// Wall-clock throughput of the MobiVine hot paths (real CPU time, not the
// virtual clock). Every platform binding shares these paths: descriptor
// lookups, setProperty validation, the event loop, and the WebView bridge.
// The numbers here track the real per-call cost of the de-fragmentation
// layer across PRs; virtual-time semantics (Figure 10) are measured by
// bench_fig10_invocation and must not move when these improve.
//
// Methodology (documented in EXPERIMENTS.md): for each scenario, one
// untimed warm-up repetition followed by kReps timed repetitions of a
// fixed batch of operations on std::chrono::steady_clock; the best
// repetition (minimum wall time, i.e. least scheduler/cache interference)
// is reported. Results are printed as a table and written as JSON to
// BENCH_throughput.json (or argv[1]).
//
//   ./build/bench/bench_wallclock_throughput [output.json]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/property.h"
#include "core/registry.h"
#include "device/mobile_device.h"
#include "minijs/value.h"
#include "s60/s60_platform.h"
#include "sim/geo_track.h"
#include "sim/scheduler.h"
#include "webview/notification_table.h"
#include "webview/webview.h"

using namespace mobivine;

namespace {

constexpr int kReps = 5;  // timed repetitions; best (min time) reported

/// Defeat dead-code elimination without perturbing the measured loop.
inline void Escape(const void* p) { asm volatile("" ::"g"(p) : "memory"); }
inline void Escape(std::uint64_t v) { asm volatile("" ::"r"(v) : "memory"); }

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

std::unique_ptr<device::MobileDevice> MakeDevice() {
  device::DeviceConfig config;
  config.seed = 42;
  auto dev = std::make_unique<device::MobileDevice>(config);
  dev->gps().set_track(sim::GeoTrack::Stationary(28.5245, 77.1855, 210));
  dev->modem().RegisterSubscriber("+15550123");
  return dev;
}

struct Result {
  std::string name;
  std::uint64_t ops = 0;      // operations per repetition
  double best_seconds = 0;    // best timed repetition
  double ops_per_sec = 0;
};

/// Run `body(ops)` once untimed, then kReps timed; keep the fastest.
Result Measure(const std::string& name, std::uint64_t ops,
               const std::function<void(std::uint64_t)>& body) {
  using Clock = std::chrono::steady_clock;
  body(ops);  // warm-up
  double best = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto begin = Clock::now();
    body(ops);
    const std::chrono::duration<double> elapsed = Clock::now() - begin;
    if (elapsed.count() < best) best = elapsed.count();
  }
  Result r;
  r.name = name;
  r.ops = ops;
  r.best_seconds = best;
  r.ops_per_sec = static_cast<double>(ops) / best;
  return r;
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

// 1. Descriptor lookup: DescriptorStore::Find by proxy name, mixing hits
//    over every registered proxy with misses (unknown names), i.e. the
//    "which descriptor backs this call?" step of every invocation.
Result DescriptorLookup() {
  const core::DescriptorStore& store = Store();
  std::vector<std::string> names = store.ProxyNames();
  names.emplace_back("NoSuchProxy");  // miss: unknown name
  names.emplace_back("Telephony2");   // miss: near-collision spelling
  return Measure("descriptor_lookup", 1'600'000, [&](std::uint64_t ops) {
    std::uint64_t sink = 0;
    // Wraparound counters, not `i % size`: an integer division per pick
    // would drown the lookups being measured.
    std::size_t ni = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      sink += reinterpret_cast<std::uintptr_t>(store.Find(names[ni]));
      if (++ni == names.size()) ni = 0;
    }
    Escape(sink);
  });
}

// 2. Full resolution chain: store -> descriptor -> binding plane ->
//    property spec + semantic method + syntactic plane (the five
//    dependent lookups an invocation plus its setProperty validation
//    perform back-to-back).
Result ResolutionChain() {
  const core::DescriptorStore& store = Store();
  const std::vector<std::string> names = store.ProxyNames();
  const std::vector<std::string> platforms = {"android", "s60", "webview",
                                              "iphone"};
  return Measure("resolution_chain", 400'000, [&](std::uint64_t ops) {
    std::uint64_t sink = 0;
    std::size_t ni = 0;
    std::size_t pi = 0;
    std::size_t qi = 0;
    std::size_t mi = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::string& name = names[ni];
      if (++ni == names.size()) ni = 0;
      const core::ProxyDescriptor* descriptor = store.Find(name);
      const core::BindingPlane* binding = descriptor->FindBinding(
          platforms[pi]);
      if (++pi == platforms.size()) pi = 0;
      if (binding != nullptr && !binding->properties.empty()) {
        if (qi >= binding->properties.size()) qi = 0;
        const core::PropertySpec* spec =
            binding->FindProperty(binding->properties[qi].name);
        ++qi;
        sink += reinterpret_cast<std::uintptr_t>(spec);
      }
      const auto& methods = descriptor->semantic().methods;
      if (mi >= methods.size()) mi = 0;
      const core::MethodSpec* method =
          descriptor->semantic().FindMethod(methods[mi].name);
      ++mi;
      sink += reinterpret_cast<std::uintptr_t>(method);
      const core::SyntacticPlane* syntax = descriptor->FindSyntactic(
          (i & 1) != 0 ? "java" : "javascript");
      sink += reinterpret_cast<std::uintptr_t>(syntax);
    }
    Escape(sink);
  });
}

// 3. setProperty through a real proxy with a binding plane attached:
//    validation against the descriptor (name + allowed values) plus the
//    PropertyBag store, alternating an int and a constrained string
//    property on the S60 Location binding (6 declared properties).
Result SetProperty() {
  auto dev = MakeDevice();
  s60::S60Platform platform(*dev);
  platform.grantPermission(s60::permissions::kLocation);
  core::ProxyRegistry registry(&Store());
  auto proxy = registry.CreateLocationProxy(platform);
  const std::string vertical = "verticalAccuracy";
  const std::string power = "powerConsumption";
  const std::string low = "low";
  const std::string high = "high";
  return Measure("set_property", 200'000, [&](std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops / 2; ++i) {
      proxy->setProperty(vertical, static_cast<long long>(i & 1023));
      proxy->setProperty(power, (i & 1) != 0 ? low : high);
    }
    Escape(proxy.get());
  });
}

// 4. Raw PropertyBag churn (no descriptor validation): typed set + get of
//    an int and a string key.
Result PropertyBagRoundTrip() {
  core::PropertyBag bag;
  const std::string alpha = "alpha";
  const std::string beta = "beta";
  const std::string payload = "a-reasonably-sized-property-value";
  return Measure("property_bag", 400'000, [&](std::uint64_t ops) {
    std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < ops / 4; ++i) {
      bag.Set(alpha, static_cast<long long>(i));
      bag.Set(beta, payload);
      if (auto v = bag.Get<long long>(alpha)) sink += *v;
      if (auto s = bag.Get<std::string>(beta)) sink += s->size();
    }
    Escape(sink);
  });
}

// 5. Scheduler churn: schedule a batch, cancel every other event, run the
//    rest (the event-loop pattern of every polling binding).
Result SchedulerChurn() {
  sim::Scheduler scheduler;
  std::vector<sim::EventId> ids(64);
  return Measure("scheduler_churn", 800'000, [&](std::uint64_t ops) {
    std::uint64_t fired = 0;
    for (std::uint64_t batch = 0; batch < ops / 64; ++batch) {
      for (int i = 0; i < 64; ++i) {
        ids[i] = scheduler.ScheduleAfter(sim::SimTime::Micros(i & 7),
                                         [&fired] { ++fired; });
      }
      for (int i = 0; i < 64; i += 2) scheduler.Cancel(ids[i]);
      scheduler.Run();
    }
    Escape(fired);
  });
}

// 6. WebView bridge round-trip: C++ -> MiniJS function call -> C++ result
//    (the Figure 9 invocation surface without the platform API cost).
Result WebViewBridge() {
  auto dev = MakeDevice();
  android::AndroidPlatform platform(*dev);
  webview::WebView webview(platform);
  webview.loadScript("function bump(x) { return x + 1; }");
  return Measure("webview_bridge", 40'000, [&](std::uint64_t ops) {
    double acc = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      minijs::Value out = webview.callGlobal(
          "bump", {minijs::Value::Number(static_cast<double>(i & 255))});
      acc += out.as_number();
    }
    Escape(static_cast<std::uint64_t>(acc));
  });
}

// 7. Notification table churn: the Figure 6 polling path — post a burst of
//    callback notifications, then drain them from the JS side.
Result NotificationDrain() {
  webview::NotificationTable table;
  const std::int64_t channel = table.NewChannel();
  return Measure("notification_drain", 400'000, [&](std::uint64_t ops) {
    std::uint64_t sink = 0;
    for (std::uint64_t batch = 0; batch < ops / 8; ++batch) {
      for (int i = 0; i < 8; ++i) {
        table.Post(channel,
                   minijs::Value::String("notification-payload-0123456789"));
      }
      sink += table.Drain(channel).size();
    }
    Escape(sink);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "BENCH_throughput.json";
  std::vector<Result> results = {
      DescriptorLookup(), ResolutionChain(), SetProperty(),
      PropertyBagRoundTrip(), SchedulerChurn(), WebViewBridge(),
      NotificationDrain(),
  };

  std::printf("Wall-clock hot-path throughput (best of %d reps)\n\n", kReps);
  std::printf("%-20s %12s %12s %16s\n", "scenario", "ops/rep", "best (ms)",
              "ops/sec");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const Result& r : results) {
    std::printf("%-20s %12llu %12.2f %16.0f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.ops),
                r.best_seconds * 1e3, r.ops_per_sec);
  }

  std::ofstream json(output);
  json << "{\n  \"bench\": \"wallclock_throughput\",\n"
       << "  \"reps\": " << kReps << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"name\": \"" << r.name << "\", \"ops\": " << r.ops
         << ", \"best_seconds\": " << r.best_seconds
         << ", \"ops_per_sec\": " << static_cast<std::uint64_t>(r.ops_per_sec)
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nwrote %s\n", output.c_str());
  return 0;
}
