// M-Push vs polling: what server-initiated delivery buys at scale.
//
// The question this bench answers (EXPERIMENTS.md W8): the paper's
// WebView plane delivers platform callbacks through a notification
// table the client POLLS. M-Push inverts that — the server streams
// kEvent frames to subscribers. At N subscribers, what do the two cost
// in delivery latency and in wire traffic, for the same event stream?
//
// Scenario matrix, written to BENCH_push.json (or argv[1]):
//
//  * push — N subscribers hold one live subscription each (kLiveOnly,
//    client-filtered); a paced publisher stamps each event body with
//    steady_clock micros; every subscriber records publish->handler
//    latency. Delivery needs zero requests.
//  * poll — the same N subscribers and the same paced stream, but each
//    subscriber polls with SubscribeMode::kDrainOnce (replay + end
//    marker + auto-close: the wire-level equivalent of the paper's
//    notification-table poll) every `poll_interval`, carrying its
//    cursor forward between rounds. Latency is the same
//    publish->handler stamp, which now includes the wait for the next
//    poll tick.
//
// Methodology mirrors bench_wire_throughput: wall-clock timing on
// steady_clock, a fresh gateway+server per scenario, tracing disabled
// during timed runs. --smoke runs one subscriber count with a shorter
// stream (the CI perf-smoke leg); --trace exports an M-Scope trace of a
// small traced push scenario (push.subscribe / push.replay spans and
// the pump's instants); --metrics dumps the push metric families;
// --trace-only skips the timed matrix and runs just the traced
// scenario (the CI validation leg).
//
//   ./build/bench/bench_push_throughput [output.json]
//       [--trace trace.json] [--metrics metrics.json] [--smoke]
//       [--trace-only]
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "support/histogram.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "wire/client.h"
#include "wire/protocol.h"
#include "wire/server.h"

using namespace mobivine;

namespace {

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ScenarioResult {
  std::string mode;
  int subscribers = 0;
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  double events_per_sec = 0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t polls = 0;        ///< kDrainOnce rounds (poll mode only)
  std::uint64_t frames_out = 0;   ///< total server frames (events + acks)
  std::uint64_t events_dropped = 0;
  std::uint64_t gap_markers = 0;
};

gateway::GatewayConfig PushGatewayConfig() {
  gateway::GatewayConfig config;
  config.shards = 4;
  config.store = &Store();
  config.push_replay_capacity = 8192;  // pollers must never outrun the ring
  return config;
}

/// Publish `total` stamped events round-robin over client ids 1..n,
/// paced so neither mode measures its own queueing collapse: the point
/// is delivery latency for a stream both sides can keep up with.
void PublishPaced(gateway::Gateway& gateway, int subscribers,
                  std::uint64_t total) {
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint64_t client = 1 + (i % static_cast<std::uint64_t>(
                                              subscribers));
    gateway.PublishEvent(client, gateway::PushTopic::kProximity,
                         std::to_string(NowMicros()));
    if ((i & 63u) == 63u) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void RecordStampedEvent(const wire::WireEvent& event,
                        support::LatencyHistogram& latency) {
  const std::uint64_t sent =
      std::strtoull(event.body.c_str(), nullptr, 10);
  const std::uint64_t now = NowMicros();
  latency.Record(now > sent ? now - sent : 0);
}

// ---------------------------------------------------------------------------
// push: one live subscription per subscriber
// ---------------------------------------------------------------------------

ScenarioResult RunPushScenario(int subscribers, std::uint64_t total) {
  gateway::Gateway gateway(PushGatewayConfig());
  wire::WireServer server(gateway, {});
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "wire server start failed: %s\n", error.c_str());
    std::exit(1);
  }

  support::LatencyHistogram latency;
  std::atomic<std::uint64_t> delivered{0};
  std::vector<std::unique_ptr<wire::WireClient>> clients;
  std::mutex ack_mutex;
  std::condition_variable ack_cv;
  int acked = 0;
  for (int i = 0; i < subscribers; ++i) {
    clients.push_back(std::make_unique<wire::WireClient>());
    wire::WireClient& client = *clients.back();
    if (!client.Connect(server.port())) {
      std::fprintf(stderr, "subscriber %d connect failed\n", i);
      std::exit(1);
    }
    wire::WireSubscribe subscribe;
    subscribe.client_id = static_cast<std::uint64_t>(i + 1);
    subscribe.topic = wire::PushTopic::kAll;
    subscribe.mode = wire::SubscribeMode::kLiveOnly;
    (void)client.Subscribe(
        subscribe,
        [&](const wire::WireEvent& event) {
          if (event.kind != wire::EventKind::kData) return;
          RecordStampedEvent(event, latency);
          delivered.fetch_add(1, std::memory_order_relaxed);
        },
        [&](const wire::WireSubscribeAck&) {
          std::lock_guard<std::mutex> lock(ack_mutex);
          ++acked;
          ack_cv.notify_all();
        });
  }
  {
    std::unique_lock<std::mutex> lock(ack_mutex);
    ack_cv.wait(lock, [&] { return acked == subscribers; });
  }

  const auto start = std::chrono::steady_clock::now();
  PublishPaced(gateway, subscribers, total);
  const auto deadline = start + std::chrono::seconds(60);
  while (delivered.load(std::memory_order_relaxed) < total &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ScenarioResult result;
  result.mode = "push";
  result.subscribers = subscribers;
  result.published = total;
  result.delivered = delivered.load(std::memory_order_relaxed);
  result.events_per_sec = seconds > 0 ? result.delivered / seconds : 0;
  const auto snap = latency.Snapshot();
  result.p50 = snap.PercentileRank(50.0);
  result.p95 = snap.PercentileRank(95.0);
  result.p99 = snap.PercentileRank(99.0);
  const auto stats = server.Stats();
  result.frames_out = stats.frames_out;
  result.events_dropped = stats.events_dropped;
  result.gap_markers = stats.gap_markers;
  for (auto& client : clients) client->Close();
  server.Stop();
  gateway.Stop();
  return result;
}

// ---------------------------------------------------------------------------
// poll: kDrainOnce rounds every poll_interval, cursor carried forward
// ---------------------------------------------------------------------------

ScenarioResult RunPollScenario(int subscribers, std::uint64_t total,
                               std::chrono::microseconds poll_interval) {
  gateway::Gateway gateway(PushGatewayConfig());
  wire::WireServer server(gateway, {});
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "wire server start failed: %s\n", error.c_str());
    std::exit(1);
  }

  support::LatencyHistogram latency;
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> polls{0};
  std::atomic<bool> stop{false};
  const std::uint64_t per_subscriber =
      total / static_cast<std::uint64_t>(subscribers);

  std::vector<std::thread> pollers;
  for (int i = 0; i < subscribers; ++i) {
    pollers.emplace_back([&, i] {
      wire::WireClient client;
      if (!client.Connect(server.port())) return;
      std::uint64_t cursor = 0;
      std::uint64_t mine = 0;
      while (mine < per_subscriber && !stop.load(std::memory_order_acquire)) {
        // One poll round: drain everything after `cursor`, then sleep.
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        std::uint64_t end_cursor = cursor;
        std::uint64_t got = 0;
        wire::WireSubscribe drain;
        drain.client_id = static_cast<std::uint64_t>(i + 1);
        drain.topic = wire::PushTopic::kAll;
        drain.mode = wire::SubscribeMode::kDrainOnce;
        drain.cursor = cursor;
        polls.fetch_add(1, std::memory_order_relaxed);
        const bool sent = client.Subscribe(
            drain,
            [&](const wire::WireEvent& event) {
              if (event.kind == wire::EventKind::kData) {
                RecordStampedEvent(event, latency);
                ++got;
                return;
              }
              std::lock_guard<std::mutex> lock(mutex);
              end_cursor = event.cursor;  // kEndOfDrain: the resume point
              done = true;
              cv.notify_all();
            },
            [&](const wire::WireSubscribeAck& ack) {
              if (ack.status != wire::WireStatus::kOk) {
                std::lock_guard<std::mutex> lock(mutex);
                done = true;
                cv.notify_all();
              }
            });
        if (!sent) return;
        {
          std::unique_lock<std::mutex> lock(mutex);
          cv.wait(lock, [&] { return done; });
          cursor = end_cursor;
        }
        mine += got;
        delivered.fetch_add(got, std::memory_order_relaxed);
        if (mine < per_subscriber) std::this_thread::sleep_for(poll_interval);
      }
      client.Close();
    });
  }

  const auto start = std::chrono::steady_clock::now();
  PublishPaced(gateway, subscribers, total);
  const auto deadline = start + std::chrono::seconds(120);
  while (delivered.load(std::memory_order_relaxed) <
             per_subscriber * static_cast<std::uint64_t>(subscribers) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (auto& poller : pollers) poller.join();

  ScenarioResult result;
  result.mode = "poll";
  result.subscribers = subscribers;
  result.published = total;
  result.delivered = delivered.load(std::memory_order_relaxed);
  result.events_per_sec = seconds > 0 ? result.delivered / seconds : 0;
  const auto snap = latency.Snapshot();
  result.p50 = snap.PercentileRank(50.0);
  result.p95 = snap.PercentileRank(95.0);
  result.p99 = snap.PercentileRank(99.0);
  result.polls = polls.load(std::memory_order_relaxed);
  const auto stats = server.Stats();
  result.frames_out = stats.frames_out;
  result.events_dropped = stats.events_dropped;
  result.gap_markers = stats.gap_markers;
  server.Stop();
  gateway.Stop();
  return result;
}

// ---------------------------------------------------------------------------
// M-Scope traced scenario + metrics dump
// ---------------------------------------------------------------------------

void RunTraced(const std::string& trace_path,
               const std::string& metrics_path) {
  namespace trace = support::trace;
  support::MetricsRegistry metrics;
  trace::SetPerThreadCapacity(256 * 1024);
  trace::Reset();
  trace::SetEnabled(true);

  gateway::Gateway gateway(PushGatewayConfig());
  wire::WireServerConfig config;
  wire::WireServer server(gateway, config);
  const auto gateway_registration = gateway.RegisterMetrics(metrics);
  const auto registration = server.RegisterMetrics(metrics);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "wire server start failed: %s\n", error.c_str());
    std::exit(1);
  }

  wire::WireClient client;
  if (!client.Connect(server.port())) {
    std::fprintf(stderr, "traced client connect failed\n");
    std::exit(1);
  }
  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t seen = 0;
  wire::WireSubscribe subscribe;
  subscribe.client_id = 1;
  subscribe.topic = wire::PushTopic::kAll;
  subscribe.mode = wire::SubscribeMode::kFromCursor;
  subscribe.cursor = 0;
  (void)client.Subscribe(
      subscribe,
      [&](const wire::WireEvent& event) {
        if (event.kind != wire::EventKind::kData) return;
        std::lock_guard<std::mutex> lock(mutex);
        ++seen;
        cv.notify_all();
      },
      [](const wire::WireSubscribeAck&) {});
  for (int i = 0; i < 200; ++i) {
    gateway.PublishEvent(1, gateway::PushTopic::kProximity,
                         std::to_string(NowMicros()));
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return seen >= 200; });
  }
  // Mixed request traffic on the same connection: the validator's base
  // gateway checks (serve spans, op instants, counter reconciliation)
  // and --require-wire both need the request plane in the same export,
  // proving responses and events share a socket without starving.
  for (std::uint64_t i = 0; i < 120; ++i) {
    wire::WireRequest request;
    request.client_id = i;
    switch (i % 3) {
      case 0:
        request.platform = gateway::Platform::kAndroid;
        request.op = gateway::Op::kHttpGet;
        request.target =
            std::string("http://") + gateway::kGatewayHttpHost + "/ping";
        break;
      case 1:
        request.platform = gateway::Platform::kIphone;
        request.op = gateway::Op::kSendSms;
        request.target = gateway::kGatewaySmsPeer;
        request.payload = "traced push message";
        break;
      default:
        request.platform = gateway::Platform::kS60;
        request.op = gateway::Op::kSegmentCount;
        request.payload = std::string(200, 'x');
        break;
    }
    wire::WireResponse response;
    (void)client.Call(std::move(request), &response);
  }
  client.Close();
  // Quiesce before snapshotting so counters reconcile and spans close.
  server.Stop();
  gateway.Stop();

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    metrics.Snapshot().WriteJson(out);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::ofstream out(trace_path);
  const trace::ExportStats stats = trace::ExportChromeTrace(out);
  out.close();
  trace::SetEnabled(false);
  std::printf("wrote %s (%zu events across %zu threads, %zu dropped)\n",
              trace_path.c_str(), stats.events, stats.threads, stats.dropped);
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::string trace_path;
  std::string metrics_path;
  bool smoke = false;
  bool trace_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--trace-only") {
      trace_only = true;
    } else {
      output = arg;
    }
  }
  if (output.empty()) output = "BENCH_push.json";
  if (trace_only) {
    if (trace_path.empty()) trace_path = "TRACE_push.json";
    std::printf("M-Scope traced push scenario:\n");
    RunTraced(trace_path, metrics_path);
    return 0;
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const std::uint64_t kTotal = smoke ? 6'000 : 20'000;
  const auto kPollInterval = std::chrono::microseconds(10'000);
  const std::vector<int> counts =
      smoke ? std::vector<int>{100} : std::vector<int>{10, 100, 200};

  std::printf("M-Push push-vs-poll benchmark (host: %u hardware threads, "
              "gateway: 4 shards%s)\n\n",
              cores, smoke ? ", smoke" : "");
  std::printf("%-6s %-12s %10s %10s %12s %9s %9s %9s %8s %11s\n", "mode",
              "subscribers", "published", "delivered", "events/s", "p50(us)",
              "p95(us)", "p99(us)", "polls", "frames_out");
  std::printf("%s\n", std::string(104, '-').c_str());

  std::vector<ScenarioResult> scenarios;
  auto report = [](const ScenarioResult& r) {
    std::printf("%-6s %-12d %10llu %10llu %12.0f %9llu %9llu %9llu %8llu "
                "%11llu\n",
                r.mode.c_str(), r.subscribers,
                static_cast<unsigned long long>(r.published),
                static_cast<unsigned long long>(r.delivered),
                r.events_per_sec, static_cast<unsigned long long>(r.p50),
                static_cast<unsigned long long>(r.p95),
                static_cast<unsigned long long>(r.p99),
                static_cast<unsigned long long>(r.polls),
                static_cast<unsigned long long>(r.frames_out));
  };
  for (int subscribers : counts) {
    ScenarioResult push = RunPushScenario(subscribers, kTotal);
    report(push);
    scenarios.push_back(std::move(push));
    ScenarioResult poll = RunPollScenario(subscribers, kTotal, kPollInterval);
    report(poll);
    scenarios.push_back(std::move(poll));
  }

  // Acceptance: at >= 100 subscribers push beats polling on delivery
  // latency AND on wire traffic per delivered event.
  const ScenarioResult* push_at_scale = nullptr;
  const ScenarioResult* poll_at_scale = nullptr;
  for (const ScenarioResult& r : scenarios) {
    if (r.subscribers < 100) continue;
    if (r.mode == "push" && !push_at_scale) push_at_scale = &r;
    if (r.mode == "poll" && !poll_at_scale) poll_at_scale = &r;
  }
  double latency_ratio = 0;
  if (push_at_scale && poll_at_scale && push_at_scale->p50 > 0) {
    latency_ratio = static_cast<double>(poll_at_scale->p50) /
                    static_cast<double>(push_at_scale->p50);
    std::printf("\npush vs poll @ %d subscribers: p50 %llu us vs %llu us "
                "(%.1fx), frames %llu vs %llu\n",
                push_at_scale->subscribers,
                static_cast<unsigned long long>(push_at_scale->p50),
                static_cast<unsigned long long>(poll_at_scale->p50),
                latency_ratio,
                static_cast<unsigned long long>(push_at_scale->frames_out),
                static_cast<unsigned long long>(poll_at_scale->frames_out));
  }

  std::ofstream json(output);
  json << "{\n  \"bench\": \"push_throughput\",\n"
       << "  \"hardware_concurrency\": " << cores
       << ",\n  \"gateway_shards\": 4,\n  \"poll_interval_us\": "
       << kPollInterval.count() << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& r = scenarios[i];
    json << "    {\"mode\": \"" << r.mode
         << "\", \"subscribers\": " << r.subscribers
         << ", \"published\": " << r.published
         << ", \"delivered\": " << r.delivered
         << ", \"events_per_sec\": "
         << static_cast<std::uint64_t>(r.events_per_sec)
         << ",\n     \"p50_us\": " << r.p50 << ", \"p95_us\": " << r.p95
         << ", \"p99_us\": " << r.p99 << ", \"polls\": " << r.polls
         << ", \"frames_out\": " << r.frames_out
         << ", \"events_dropped\": " << r.events_dropped
         << ", \"gap_markers\": " << r.gap_markers << "}"
         << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  json << "  ]";
  if (push_at_scale && poll_at_scale) {
    json << ",\n  \"acceptance\": {\"subscribers\": "
         << push_at_scale->subscribers
         << ", \"push_p50_us\": " << push_at_scale->p50
         << ", \"poll_p50_us\": " << poll_at_scale->p50
         << ", \"poll_over_push_p50\": " << latency_ratio
         << ", \"push_frames_out\": " << push_at_scale->frames_out
         << ", \"poll_frames_out\": " << poll_at_scale->frames_out << "}";
  }
  json << "\n}\n";
  json.close();
  std::printf("wrote %s\n", output.c_str());

  if (!trace_path.empty()) {
    std::printf("\nM-Scope traced push scenario:\n");
    RunTraced(trace_path, metrics_path);
  }
  return 0;
}
