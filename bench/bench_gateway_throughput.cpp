// M-Gateway serving throughput and tail latency (wall clock).
//
// Two experiment families, written to BENCH_gateway.json (or argv[1]):
//
//  * scaling — closed-loop traffic (producers adapt to capacity) against
//    1/2/4/8 shards: aggregate requests/sec and p50/p95/p99 latency. On a
//    multi-core host throughput scales with shard count until cores run
//    out; the JSON records hardware_concurrency so a single-core run
//    (flat scaling) is distinguishable from a regression.
//  * overload — open-loop traffic at a rate far above capacity into tiny
//    queues: shedding must kick in (kOverloaded), the queues must stay
//    bounded, and the p95 of *served* requests must stay bounded instead
//    of growing with the backlog. The run would not terminate at all
//    with an unbounded queue.
//
// Methodology (EXPERIMENTS.md W2): wall-clock timing on
// std::chrono::steady_clock around RunTraffic. Each scenario gets a
// fresh Gateway; a small untimed warm-up batch populates interners,
// descriptor indexes and per-shard caches before the measured batch.
// Latency percentiles come from the stats plane's cumulative histograms,
// so the warm-up's samples are included there — it is 10% of the load
// and shifts bucketed percentiles by at most one bucket (~12.5%).
//
// M-Scope (EXPERIMENTS.md W3): with --trace/--metrics an additional
// traced scenario runs after the untimed ones — tracing enabled, mixed
// traffic with per-request properties and injected transient failures —
// and exports Chrome trace_event JSON plus a flat metrics dump. The
// throughput scenarios above always run with tracing disabled, so their
// numbers measure the disabled-hook cost, not recording. --trace-only
// skips the throughput scenarios (the CI validation leg uses this).
//
// M-Failover (EXPERIMENTS.md W4): with one or more --fault-plan flags
// the bench runs the failover availability matrix instead — each plan is
// driven through the gateway three times (failover disabled / failover /
// failover+hedging) with single-round retries, so recovery is entirely
// M-Failover's doing — and writes BENCH_failover.json (or argv[1]).
//
//   ./build/bench/bench_gateway_throughput [output.json]
//       [--trace trace.json] [--metrics metrics.json] [--trace-only]
//       [--fault-plan "android:*:error=timeout:p=0.3"]...
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "gateway/traffic.h"
#include "sim/clock.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace mobivine;

namespace {

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

struct ScalingResult {
  int shards = 0;
  gateway::TrafficReport report;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t max_queue_depth = 0;
};

ScalingResult RunScaling(int shards, std::uint64_t requests_per_producer) {
  gateway::GatewayConfig config;
  config.shards = shards;
  config.queue_capacity = 1024;
  config.store = &Store();
  gateway::Gateway gw(config);

  gateway::TrafficConfig traffic;
  traffic.producers = std::max(2, shards);
  traffic.requests_per_producer = requests_per_producer / traffic.producers;
  traffic.clients = 512;
  traffic.window = 16;
  traffic.seed = 42;

  // Warm-up: populate interners, descriptor indexes, per-shard caches.
  gateway::TrafficConfig warmup = traffic;
  warmup.requests_per_producer =
      std::max<std::uint64_t>(traffic.requests_per_producer / 10, 1);
  (void)gateway::RunTraffic(gw, warmup);
  const std::uint64_t warm_ok = gw.Stats().totals.ok;

  ScalingResult result;
  result.shards = shards;
  result.report = gateway::RunTraffic(gw, traffic);
  const gateway::GatewaySnapshot stats = gw.Stats();
  result.p50 = stats.p50_micros();
  result.p95 = stats.p95_micros();
  result.p99 = stats.p99_micros();
  result.max_queue_depth = stats.totals.max_queue_depth;
  // Sanity: the measured batch completed fully and nothing was shed.
  if (stats.totals.ok - warm_ok != result.report.ok) {
    std::fprintf(stderr, "scaling(%d): warm/measured accounting mismatch\n",
                 shards);
  }
  gw.Stop();
  return result;
}

struct OverloadResult {
  gateway::TrafficReport report;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t shed = 0, served = 0;
  double shed_fraction = 0;
};

OverloadResult RunOverload() {
  gateway::GatewayConfig config;
  config.shards = 2;
  config.queue_capacity = 64;  // tiny on purpose: shedding is the subject
  config.store = &Store();
  gateway::Gateway gw(config);

  // Calibrate the overload rate off this host's actual capacity so the
  // scenario is an overload everywhere, fast or slow.
  gateway::TrafficConfig probe;
  probe.producers = 2;
  probe.requests_per_producer = 2000;
  probe.window = 16;
  probe.seed = 7;
  const gateway::TrafficReport probe_report = gateway::RunTraffic(gw, probe);
  const double capacity_rps = probe_report.completed_per_sec;

  gateway::TrafficConfig traffic;
  traffic.producers = 2;
  traffic.requests_per_producer = 10000;
  traffic.clients = 512;
  traffic.window = 0;  // open loop
  traffic.open_loop_rps = capacity_rps * 3.0;  // 3x sustainable load
  traffic.seed = 7;

  const std::uint64_t probe_ok = gw.Stats().totals.ok;
  OverloadResult result;
  result.report = gateway::RunTraffic(gw, traffic);
  const gateway::GatewaySnapshot stats = gw.Stats();
  result.p50 = stats.p50_micros();
  result.p95 = stats.p95_micros();
  result.p99 = stats.p99_micros();
  result.max_queue_depth = stats.totals.max_queue_depth;
  result.shed = result.report.shed;
  result.served = stats.totals.ok - probe_ok;
  result.shed_fraction =
      static_cast<double>(result.shed) /
      static_cast<double>(result.report.submitted);
  gw.Stop();
  return result;
}

// ---------------------------------------------------------------------------
// W4: failover availability matrix
// ---------------------------------------------------------------------------

struct FailoverCell {
  std::string mode;  ///< "disabled" | "failover" | "failover+hedging"
  gateway::TrafficReport report;
  double availability = 0;  ///< ok / submitted
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t failovers = 0, hedges_fired = 0, hedges_won = 0;
  std::uint64_t breaker_opens = 0, faults_injected = 0;
};

FailoverCell RunFailoverCell(const support::FaultPlan& plan,
                             bool failover, bool hedging) {
  gateway::GatewayConfig config;
  config.shards = 2;
  config.store = &Store();
  config.failover.failover = failover;
  config.failover.hedging = hedging;
  config.failover.fault_plan = plan;

  gateway::Gateway gw(config);

  gateway::TrafficConfig traffic;
  traffic.producers = 2;
  traffic.requests_per_producer = 2000;
  traffic.clients = 512;
  traffic.window = 16;
  traffic.seed = 42;
  // One retry round: whatever availability survives the faults is
  // M-Failover's doing, not the retry plane's.
  traffic.retry.max_attempts = 1;
  // Every primary on android, where the shipped plans inject: the matrix
  // measures how the faulted platform's traffic fares.
  traffic.mix.android = 1;
  traffic.mix.s60 = 0;
  traffic.mix.iphone = 0;

  FailoverCell cell;
  cell.mode = !failover ? "disabled"
                        : (hedging ? "failover+hedging" : "failover");
  cell.report = gateway::RunTraffic(gw, traffic);
  const gateway::GatewaySnapshot stats = gw.Stats();
  cell.availability = cell.report.submitted > 0
                          ? static_cast<double>(cell.report.ok) /
                                static_cast<double>(cell.report.submitted)
                          : 0;
  cell.p50 = stats.p50_micros();
  cell.p95 = stats.p95_micros();
  cell.p99 = stats.p99_micros();
  cell.failovers = stats.totals.failovers;
  cell.hedges_fired = stats.totals.hedges_fired;
  cell.hedges_won = stats.totals.hedges_won;
  cell.breaker_opens = stats.totals.breaker_opens;
  cell.faults_injected = stats.totals.faults_injected;
  gw.Stop();
  return cell;
}

int RunFailoverMatrix(const std::vector<std::string>& plan_texts,
                      const std::string& output) {
  std::printf("M-Failover availability matrix (2 shards, android-primary "
              "traffic, 1 retry round)\n");
  std::ofstream json(output);
  json << "{\n  \"bench\": \"gateway_failover\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n  \"matrix\": [\n";
  bool first_cell = true;
  for (const std::string& text : plan_texts) {
    std::string error;
    const auto plan = support::FaultPlan::Parse(text, &error);
    if (!plan) {
      std::fprintf(stderr, "bad --fault-plan %s: %s\n", text.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("\nplan: %s\n", plan->ToString().c_str());
    std::printf("%-18s %12s %10s %10s %10s %10s %8s %8s %8s\n", "mode",
                "availability", "p50(us)", "p95(us)", "p99(us)", "faults",
                "failovr", "hedged", "brk-open");
    std::printf("%s\n", std::string(100, '-').c_str());
    const struct { bool failover, hedging; } modes[] = {
        {false, false}, {true, false}, {true, true}};
    for (const auto& mode : modes) {
      const FailoverCell cell =
          RunFailoverCell(*plan, mode.failover, mode.hedging);
      std::printf("%-18s %11.2f%% %10llu %10llu %10llu %10llu %8llu %8llu "
                  "%8llu\n",
                  cell.mode.c_str(), cell.availability * 100.0,
                  static_cast<unsigned long long>(cell.p50),
                  static_cast<unsigned long long>(cell.p95),
                  static_cast<unsigned long long>(cell.p99),
                  static_cast<unsigned long long>(cell.faults_injected),
                  static_cast<unsigned long long>(cell.failovers),
                  static_cast<unsigned long long>(cell.hedges_fired),
                  static_cast<unsigned long long>(cell.breaker_opens));
      json << (first_cell ? "" : ",\n");
      first_cell = false;
      json << "    {\"plan\": \"" << plan->ToString() << "\", \"mode\": \""
           << cell.mode << "\", \"submitted\": " << cell.report.submitted
           << ", \"ok\": " << cell.report.ok
           << ", \"failed\": " << cell.report.failed
           << ", \"timed_out\": " << cell.report.timed_out
           << ",\n     \"availability\": " << cell.availability
           << ", \"p50_us\": " << cell.p50 << ", \"p95_us\": " << cell.p95
           << ", \"p99_us\": " << cell.p99
           << ",\n     \"faults_injected\": " << cell.faults_injected
           << ", \"failovers\": " << cell.failovers
           << ", \"hedges_fired\": " << cell.hedges_fired
           << ", \"hedges_won\": " << cell.hedges_won
           << ", \"breaker_opens\": " << cell.breaker_opens << "}";
    }
  }
  json << "\n  ]\n}\n";
  json.close();
  std::printf("\nwrote %s\n", output.c_str());
  return 0;
}

/// M-Scope scenario: tracing on, small gateway, mixed traffic that
/// exercises every span source — per-request properties (core
/// setProperty under a gateway attempt), transient failures (retry +
/// backoff spans), tight deadlines (deadline instants) — then exports
/// the trace and a metrics dump.
void RunTraced(const std::string& trace_path,
               const std::string& metrics_path) {
  namespace trace = support::trace;
  trace::SetPerThreadCapacity(256 * 1024);
  trace::Reset();
  trace::SetEnabled(true);

  gateway::GatewayConfig config;
  config.shards = 2;
  config.store = &Store();
  // Mild packet loss makes some attempts fail transiently, so the trace
  // contains gateway.backoff spans and multi-attempt serves.
  config.device_template.network.loss_probability = 0.2;
  config.device_template.network.timeout = sim::SimTime::Seconds(1);
  config.default_retry.max_attempts = 4;
  config.default_retry.initial_backoff = std::chrono::microseconds(100);
  gateway::Gateway gw(config);

  support::MetricsRegistry metrics;
  const auto registration = gw.RegisterMetrics(metrics);

  for (std::uint64_t i = 0; i < 400; ++i) {
    gateway::Request request;
    request.client_id = i;
    switch (i % 4) {
      case 0:
        request.platform = gateway::Platform::kAndroid;
        request.op = gateway::Op::kHttpGet;
        request.target =
            std::string("http://") + gateway::kGatewayHttpHost + "/ping";
        break;
      case 1:
        request.platform = gateway::Platform::kS60;
        request.op = gateway::Op::kGetLocation;
        request.properties.emplace_back("horizontalAccuracy", 50LL);
        request.properties.emplace_back("powerConsumption",
                                        core::PropertyValue(std::string("low")));
        break;
      case 2:
        request.platform = gateway::Platform::kIphone;
        request.op = gateway::Op::kSendSms;
        request.target = gateway::kGatewaySmsPeer;
        request.payload = "traced message";
        break;
      default:
        request.platform = gateway::Platform::kS60;
        request.op = gateway::Op::kSegmentCount;
        request.payload = std::string(200, 'x');
        break;
    }
    (void)gw.Call(std::move(request));
  }
  gw.Stop();

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    metrics.Snapshot().WriteJson(out);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::ofstream out(trace_path);
  const trace::ExportStats stats = trace::ExportChromeTrace(out);
  out.close();
  trace::SetEnabled(false);
  std::printf(
      "wrote %s (%zu events across %zu threads, %zu dropped)\n",
      trace_path.c_str(), stats.events, stats.threads, stats.dropped);
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::string trace_path;
  std::string metrics_path;
  bool trace_only = false;
  std::vector<std::string> fault_plans;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace-only") {
      trace_only = true;
    } else if (arg == "--fault-plan" && i + 1 < argc) {
      fault_plans.emplace_back(argv[++i]);
    } else {
      output = arg;
    }
  }
  if (!fault_plans.empty()) {
    return RunFailoverMatrix(
        fault_plans, output.empty() ? "BENCH_failover.json" : output);
  }
  if (output.empty()) output = "BENCH_gateway.json";
  if (trace_only) {
    RunTraced(trace_path.empty() ? "TRACE_gateway.json" : trace_path,
              metrics_path);
    return 0;
  }
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("M-Gateway serving benchmark (host: %u hardware threads)\n\n",
              cores);
  std::printf("%-8s %12s %12s %10s %10s %10s %10s\n", "shards", "served",
              "req/s", "p50(us)", "p95(us)", "p99(us)", "max-q");
  std::printf("%s\n", std::string(78, '-').c_str());

  std::vector<ScalingResult> scaling;
  for (int shards : {1, 2, 4, 8}) {
    ScalingResult r = RunScaling(shards, 20000);
    std::printf("%-8d %12llu %12.0f %10llu %10llu %10llu %10llu\n", r.shards,
                static_cast<unsigned long long>(r.report.ok),
                r.report.completed_per_sec,
                static_cast<unsigned long long>(r.p50),
                static_cast<unsigned long long>(r.p95),
                static_cast<unsigned long long>(r.p99),
                static_cast<unsigned long long>(r.max_queue_depth));
    scaling.push_back(std::move(r));
  }

  OverloadResult overload = RunOverload();
  std::printf(
      "\noverload (2 shards, 64-slot queues, 3x capacity open-loop):\n"
      "  submitted %llu  served %llu  shed %llu (%.1f%%)  "
      "p95 %llu us  max queue depth %llu\n",
      static_cast<unsigned long long>(overload.report.submitted),
      static_cast<unsigned long long>(overload.served),
      static_cast<unsigned long long>(overload.shed),
      overload.shed_fraction * 100.0,
      static_cast<unsigned long long>(overload.p95),
      static_cast<unsigned long long>(overload.max_queue_depth));

  std::ofstream json(output);
  json << "{\n  \"bench\": \"gateway_throughput\",\n"
       << "  \"hardware_concurrency\": " << cores << ",\n"
       << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalingResult& r = scaling[i];
    json << "    {\"shards\": " << r.shards << ", \"served\": " << r.report.ok
         << ", \"requests_per_sec\": "
         << static_cast<std::uint64_t>(r.report.completed_per_sec)
         << ", \"p50_us\": " << r.p50 << ", \"p95_us\": " << r.p95
         << ", \"p99_us\": " << r.p99
         << ", \"max_queue_depth\": " << r.max_queue_depth << "}"
         << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"overload\": {\n"
       << "    \"shards\": 2, \"queue_capacity\": 64,\n"
       << "    \"submitted\": " << overload.report.submitted
       << ", \"served\": " << overload.served
       << ", \"shed\": " << overload.shed << ",\n"
       << "    \"shed_fraction\": " << overload.shed_fraction
       << ", \"p50_us\": " << overload.p50
       << ", \"p95_us\": " << overload.p95
       << ", \"p99_us\": " << overload.p99
       << ", \"max_queue_depth\": " << overload.max_queue_depth << "\n"
       << "  }\n}\n";
  json.close();
  std::printf("\nwrote %s\n", output.c_str());

  if (!trace_path.empty()) {
    std::printf("\nM-Scope traced scenario:\n");
    RunTraced(trace_path, metrics_path);
  }
  return 0;
}
