// M-Fleet: device-count scaling and multi-tenant overload isolation
// (wall clock), written to BENCH_fleet.json (or argv[1]).
//
// Two experiment families (EXPERIMENTS.md W10):
//
//  * scaling — one fleet tenant at 10k / 100k / 1M flyweight devices
//    driving the gateway open-loop at this host's derated sustained rate
//    (closed-loop calibrated capacity * kOpenLoopDerate, so the row
//    measures *sustained* service, not shedding). The aggregate offered
//    load is constant across rows — the row varies only the number of
//    flyweight devices it is spread over — so a flat served-rate column
//    is the result: per-device bookkeeping (16-byte DeviceState, shared
//    routes, per-tenant accounting) must not degrade with fleet size.
//  * isolation — four tenants with admission weights {8, 4, 2, 1}
//    against a serving capacity pinned by fault injection (every request
//    is charged a fixed wall-clock service time, so the overload is
//    queue-bound, not host-CPU-bound). The three behaved tenants offer
//    ~30% of capacity between them while the weight-1 rogue floods 1.5x
//    capacity on its own. The gateway's
//    weighted per-tenant queue caps (gateway/tenant.h) shed the rogue
//    back to its quota; each behaved tenant's client-observed p95 is
//    compared against an uncontended baseline run (same rates, no
//    rogue, fresh gateway). Server-side per-tenant counters must
//    reconcile exactly once quiescent: ok + failed + timed_out + shed
//    == submitted, for every tenant.
//
// Methodology: wall-clock timing around Fleet::Run (open loop, paced
// ticks); capacity is calibrated per host with a closed-loop probe on a
// separate gateway so rate fractions mean the same thing on any machine.
// Arrival schedules are seeded (SeedSequence "fleet" domain) — identical
// seeds give identical schedules.
//
// M-Scope: --trace-only --trace X --metrics Y runs a small traced fleet
// (2 tenants, diurnal curve, tracing enabled) and exports Chrome
// trace_event JSON plus a metrics dump with gateway.tenant.* and
// fleet.* series — the CI validation leg (validate_mscope.py
// --require-fleet) consumes these.
//
//   ./build/bench/bench_fleet_throughput [output.json]
//       [--trace trace.json] [--metrics metrics.json] [--trace-only]
//       [--devices N]...   (override the scaling rows)
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "fleet/fleet.h"
#include "gateway/gateway.h"
#include "gateway/traffic.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace mobivine;

namespace {

const core::DescriptorStore& Store() {
  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);
  return store;
}

/// Open-loop load below is expressed relative to what the host sustains
/// with producers burning CPU alongside the shards. The closed-loop
/// probe measures serving capacity with adaptive producers; an open-loop
/// fleet on the same cores sustains a fraction of that (pacing, request
/// building and per-tenant accounting all bill to the same CPUs), so
/// rates are derated by this factor before use.
constexpr double kOpenLoopDerate = 0.3;

/// Closed-loop probe on a throwaway gateway: what this host can actually
/// serve, so open-loop rates below are host-relative.
double CalibrateCapacity() {
  gateway::GatewayConfig config;
  config.shards = 2;
  config.store = &Store();
  gateway::Gateway gw(config);
  gateway::TrafficConfig probe;
  probe.producers = 2;
  probe.requests_per_producer = 3000;
  probe.window = 16;
  probe.seed = 7;
  const gateway::TrafficReport report = gateway::RunTraffic(gw, probe);
  gw.Stop();
  return report.completed_per_sec;
}

struct ScalingRow {
  std::uint64_t devices = 0;
  double rps_per_device = 0;
  double offered_rps = 0;
  fleet::FleetReport report;
  bool reconcile_exact = false;
};

ScalingRow RunScalingRow(std::uint64_t devices, double sustained_rps) {
  fleet::FleetConfig config;
  fleet::FleetTenant tenant;
  tenant.tenant = {.id = 1, .name = "fleet", .weight = 1};
  tenant.devices = devices;
  // Constant aggregate load across rows: the row varies only the number
  // of flyweight devices that load is spread over.
  tenant.mean_rps_per_device =
      sustained_rps / static_cast<double>(devices);
  config.tenants.push_back(tenant);
  config.duration_seconds = 3.0;
  config.producers = 2;
  config.seed = 42;
  config.curve = fleet::DiurnalCurve::Flat();
  fleet::Fleet fl(config);

  gateway::GatewayConfig gw_config;
  gw_config.shards = 2;
  // Deep enough to absorb OS-scheduler bursts on a loaded host (tens of
  // ms at the offered rate); the row measures sustained service, and a
  // worker stalled by the scheduler for 20 ms must not turn into shed.
  gw_config.queue_capacity = 8192;
  gw_config.store = &Store();
  gw_config.tenants = fl.TenantConfigs();
  gateway::Gateway gw(gw_config);

  ScalingRow row;
  row.devices = devices;
  row.rps_per_device = tenant.mean_rps_per_device;
  row.offered_rps = tenant.mean_rps_per_device * static_cast<double>(devices);
  row.report = fl.Run(gw);

  row.reconcile_exact = true;
  for (const gateway::TenantSnapshot& t : gw.TenantStatsSnapshot()) {
    if (t.ok + t.failed + t.timed_out + t.shed != t.submitted) {
      row.reconcile_exact = false;
    }
  }
  gw.Stop();
  return row;
}

// ---------------------------------------------------------------------------
// Isolation: behaved tenants vs a flooding rogue
// ---------------------------------------------------------------------------

struct TenantSpec {
  gateway::TenantConfig tenant;
  std::uint64_t devices = 0;
  double rps_fraction = 0;  ///< of the derated sustained rate
};

struct IsolationResult {
  fleet::FleetReport uncontended;  ///< behaved tenants only
  fleet::FleetReport contended;    ///< behaved + rogue
  std::vector<gateway::TenantSnapshot> server;  ///< contended run
  bool reconcile_exact = true;
  bool isolation_ok = true;
  double rogue_shed_fraction = 0;
};

fleet::FleetConfig IsolationFleet(const std::vector<TenantSpec>& specs,
                                  double sustained_rps) {
  fleet::FleetConfig config;
  for (const TenantSpec& spec : specs) {
    fleet::FleetTenant tenant;
    tenant.tenant = spec.tenant;
    tenant.devices = spec.devices;
    tenant.mean_rps_per_device = sustained_rps * spec.rps_fraction /
                                 static_cast<double>(spec.devices);
    config.tenants.push_back(tenant);
  }
  config.duration_seconds = 4.0;
  config.producers = 2;
  config.seed = 99;
  config.curve = fleet::DiurnalCurve::Flat();
  return config;
}

/// Every isolation request is charged this much *wall* time on its
/// shard worker via fault injection, which pins serving capacity at
/// shards * 1e6 / kIsolationServiceUs req/s regardless of host speed —
/// the overload is queue-bound, not CPU-bound, so the committed numbers
/// mean the same thing on any machine.
constexpr std::uint64_t kIsolationServiceUs = 5000;
constexpr int kIsolationShards = 2;

fleet::FleetReport RunIsolationPhase(const fleet::FleetConfig& fleet_config,
                                     const std::vector<TenantSpec>& all,
                                     std::vector<gateway::TenantSnapshot>*
                                         server_out) {
  // The gateway always knows every tenant (weights shape the caps even
  // for tenants idle in this phase).
  gateway::GatewayConfig gw_config;
  gw_config.shards = kIsolationShards;
  // Watermark 24 against total weight 16 (8+4+2+1 tenants + the
  // built-in default at 1) puts the rogue's per-shard outstanding-work
  // cap at exactly one slot (floor(24/16) = 1): a behaved request never
  // waits behind more than one rogue service time, while the behaved
  // caps (12/6/3) leave room for Poisson bursts.
  gw_config.queue_capacity = 32;
  gw_config.shed_watermark = 24;
  gw_config.store = &Store();
  gw_config.failover.fault_plan = *support::FaultPlan::Parse(
      "*:*:latency=" + std::to_string(kIsolationServiceUs) + ":wall");
  for (const TenantSpec& spec : all) {
    gw_config.tenants.push_back(spec.tenant);
  }
  gateway::Gateway gw(gw_config);
  fleet::Fleet fl(fleet_config);
  fleet::FleetReport report = fl.Run(gw);
  if (server_out != nullptr) *server_out = gw.TenantStatsSnapshot();
  gw.Stop();
  return report;
}

IsolationResult RunIsolation() {
  // Fractions of the fault-pinned serving capacity (see
  // kIsolationServiceUs): behaved tenants offer 30% between them, the
  // rogue floods 1.5x capacity on its own.
  const double capacity_rps = kIsolationShards * 1e6 /
                              static_cast<double>(kIsolationServiceUs);
  const std::vector<TenantSpec> behaved = {
      {{.id = 1, .name = "alpha", .weight = 8}, 4000, 0.15},
      {{.id = 2, .name = "beta", .weight = 4}, 2000, 0.09},
      {{.id = 3, .name = "gamma", .weight = 2}, 1000, 0.06},
  };
  std::vector<TenantSpec> all = behaved;
  all.push_back({{.id = 4, .name = "rogue", .weight = 1}, 1000, 1.5});

  IsolationResult result;
  result.uncontended = RunIsolationPhase(
      IsolationFleet(behaved, capacity_rps), all, nullptr);
  result.contended = RunIsolationPhase(IsolationFleet(all, capacity_rps),
                                       all, &result.server);

  for (const gateway::TenantSnapshot& t : result.server) {
    if (t.ok + t.failed + t.timed_out + t.shed != t.submitted) {
      result.reconcile_exact = false;
    }
  }
  for (std::size_t i = 0; i < behaved.size(); ++i) {
    const fleet::FleetTenantReport& before = result.uncontended.tenants[i];
    const fleet::FleetTenantReport& after = result.contended.tenants[i];
    if (after.shed > 0 ||
        after.p95_us > std::max<std::uint64_t>(before.p95_us, 1) * 2) {
      result.isolation_ok = false;
    }
  }
  const fleet::FleetTenantReport& rogue = result.contended.tenants.back();
  result.rogue_shed_fraction =
      rogue.submitted > 0
          ? static_cast<double>(rogue.shed) /
                static_cast<double>(rogue.submitted)
          : 0;
  return result;
}

// ---------------------------------------------------------------------------
// M-Scope traced scenario (CI validation leg)
// ---------------------------------------------------------------------------

void RunTraced(const std::string& trace_path,
               const std::string& metrics_path) {
  namespace trace = support::trace;
  trace::SetPerThreadCapacity(256 * 1024);
  trace::Reset();
  trace::SetEnabled(true);

  fleet::FleetConfig config;
  config.tenants.push_back(
      {.tenant = {.id = 1, .name = "alpha", .weight = 2},
       .devices = 600,
       .mean_rps_per_device = 1.0});
  config.tenants.push_back(
      {.tenant = {.id = 2, .name = "beta", .weight = 1},
       .devices = 300,
       .mean_rps_per_device = 1.0});
  config.duration_seconds = 1.0;
  config.producers = 2;
  config.seed = 5;
  config.paced = false;  // CI wants the schedule, not the wall-clock rate
  fleet::Fleet fl(config);

  gateway::GatewayConfig gw_config;
  gw_config.shards = 2;
  gw_config.store = &Store();
  gw_config.tenants = fl.TenantConfigs();
  gateway::Gateway gw(gw_config);

  support::MetricsRegistry metrics;
  const auto gw_metrics = gw.RegisterMetrics(metrics);
  const auto fleet_metrics = fl.RegisterMetrics(metrics);

  const fleet::FleetReport report = fl.Run(gw);
  std::printf("traced fleet: %llu devices, %llu submitted, %llu served\n",
              static_cast<unsigned long long>(report.devices),
              static_cast<unsigned long long>(report.submitted),
              static_cast<unsigned long long>(report.ok + report.failed +
                                              report.timed_out));

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    metrics.Snapshot().WriteJson(out);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  gw.Stop();
  std::ofstream out(trace_path);
  const trace::ExportStats stats = trace::ExportChromeTrace(out);
  out.close();
  trace::SetEnabled(false);
  std::printf("wrote %s (%zu events across %zu threads, %zu dropped)\n",
              trace_path.c_str(), stats.events, stats.threads,
              stats.dropped);
}

void WriteTenantJson(std::ofstream& json, const fleet::FleetTenantReport& t,
                     const char* indent) {
  json << indent << "{\"name\": \"" << t.name << "\", \"devices\": "
       << t.devices << ", \"submitted\": " << t.submitted
       << ", \"ok\": " << t.ok << ", \"shed\": " << t.shed
       << ", \"failed\": " << t.failed << ", \"timed_out\": " << t.timed_out
       << ", \"p50_us\": " << t.p50_us << ", \"p95_us\": " << t.p95_us
       << ", \"p99_us\": " << t.p99_us << "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::string trace_path;
  std::string metrics_path;
  bool trace_only = false;
  std::vector<std::uint64_t> device_rows;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace-only") {
      trace_only = true;
    } else if (arg == "--devices" && i + 1 < argc) {
      device_rows.push_back(std::stoull(argv[++i]));
    } else {
      output = arg;
    }
  }
  if (output.empty()) output = "BENCH_fleet.json";
  if (trace_only) {
    RunTraced(trace_path.empty() ? "TRACE_fleet.json" : trace_path,
              metrics_path);
    return 0;
  }
  if (device_rows.empty()) device_rows = {10000, 100000, 1000000};

  const unsigned cores = std::thread::hardware_concurrency();
  const double capacity = CalibrateCapacity();
  const double sustained = capacity * kOpenLoopDerate;
  std::printf("M-Fleet benchmark (host: %u hardware threads, calibrated "
              "capacity %.0f req/s closed-loop, open-loop target %.0f "
              "req/s)\n\n",
              cores, capacity, sustained);

  std::printf("%-10s %14s %12s %12s %10s %10s %10s %8s\n", "devices",
              "rps/device", "submitted", "served/s", "p50(us)", "p95(us)",
              "p99(us)", "shed");
  std::printf("%s\n", std::string(92, '-').c_str());
  std::vector<ScalingRow> scaling;
  for (std::uint64_t devices : device_rows) {
    ScalingRow row = RunScalingRow(devices, sustained);
    std::printf("%-10llu %14.6f %12llu %12.0f %10llu %10llu %10llu %8llu\n",
                static_cast<unsigned long long>(row.devices),
                row.rps_per_device,
                static_cast<unsigned long long>(row.report.submitted),
                row.report.completed_per_sec,
                static_cast<unsigned long long>(row.report.p50_us),
                static_cast<unsigned long long>(row.report.p95_us),
                static_cast<unsigned long long>(row.report.p99_us),
                static_cast<unsigned long long>(row.report.shed));
    scaling.push_back(std::move(row));
  }

  const IsolationResult isolation = RunIsolation();
  std::printf("\nisolation (weights alpha:8 beta:4 gamma:2 rogue:1, "
              "rogue floods 1.5x capacity):\n");
  std::printf("%-8s %12s %10s %10s %14s %14s %8s\n", "tenant", "submitted",
              "ok", "shed", "uncont-p95", "cont-p95", "ratio");
  std::printf("%s\n", std::string(82, '-').c_str());
  for (std::size_t i = 0; i < isolation.contended.tenants.size(); ++i) {
    const fleet::FleetTenantReport& t = isolation.contended.tenants[i];
    const bool behaved = i < isolation.uncontended.tenants.size();
    const std::uint64_t before =
        behaved ? isolation.uncontended.tenants[i].p95_us : 0;
    std::printf("%-8s %12llu %10llu %10llu %14llu %14llu %8.2f\n",
                t.name.c_str(),
                static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.ok),
                static_cast<unsigned long long>(t.shed),
                static_cast<unsigned long long>(before),
                static_cast<unsigned long long>(t.p95_us),
                before > 0 ? static_cast<double>(t.p95_us) /
                                 static_cast<double>(before)
                           : 0.0);
  }
  std::printf("rogue shed fraction %.1f%%  isolation_ok %s  "
              "reconcile_exact %s\n",
              isolation.rogue_shed_fraction * 100.0,
              isolation.isolation_ok ? "yes" : "NO",
              isolation.reconcile_exact ? "yes" : "NO");

  std::ofstream json(output);
  json << "{\n  \"bench\": \"fleet_throughput\",\n"
       << "  \"hardware_concurrency\": " << cores << ",\n"
       << "  \"device_state_bytes\": " << sizeof(fleet::DeviceState)
       << ",\n"
       << "  \"calibrated_capacity_rps\": "
       << static_cast<std::uint64_t>(capacity)
       << ",\n  \"open_loop_derate\": " << kOpenLoopDerate
       << ",\n  \"open_loop_target_rps\": "
       << static_cast<std::uint64_t>(sustained) << ",\n  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalingRow& r = scaling[i];
    json << "    {\"devices\": " << r.devices << ", \"rps_per_device\": "
         << r.rps_per_device << ", \"offered_rps\": "
         << static_cast<std::uint64_t>(r.offered_rps)
         << ",\n     \"fleet_state_mb\": "
         << static_cast<double>(r.devices * sizeof(fleet::DeviceState)) /
                (1024.0 * 1024.0)
         << ", \"submitted\": " << r.report.submitted
         << ", \"ok\": " << r.report.ok << ", \"shed\": " << r.report.shed
         << ", \"failed\": " << r.report.failed
         << ", \"timed_out\": " << r.report.timed_out
         << ",\n     \"completed_per_sec\": "
         << static_cast<std::uint64_t>(r.report.completed_per_sec)
         << ", \"p50_us\": " << r.report.p50_us
         << ", \"p95_us\": " << r.report.p95_us
         << ", \"p99_us\": " << r.report.p99_us
         << ", \"reconcile_exact\": "
         << (r.reconcile_exact ? "true" : "false") << "}"
         << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"isolation\": {\n"
       << "    \"weights\": {\"alpha\": 8, \"beta\": 4, \"gamma\": 2, "
          "\"rogue\": 1},\n"
       << "    \"injected_service_us\": " << kIsolationServiceUs
       << ", \"capacity_rps\": "
       << static_cast<std::uint64_t>(kIsolationShards * 1e6 /
                                     kIsolationServiceUs) << ",\n"
       << "    \"rogue_offered_fraction_of_capacity\": 1.5,\n"
       << "    \"uncontended\": [\n";
  for (std::size_t i = 0; i < isolation.uncontended.tenants.size(); ++i) {
    WriteTenantJson(json, isolation.uncontended.tenants[i], "      ");
    json << (i + 1 < isolation.uncontended.tenants.size() ? "," : "")
         << "\n";
  }
  json << "    ],\n    \"contended\": [\n";
  for (std::size_t i = 0; i < isolation.contended.tenants.size(); ++i) {
    WriteTenantJson(json, isolation.contended.tenants[i], "      ");
    json << (i + 1 < isolation.contended.tenants.size() ? "," : "") << "\n";
  }
  json << "    ],\n    \"p95_ratios\": [";
  for (std::size_t i = 0; i < isolation.uncontended.tenants.size(); ++i) {
    const std::uint64_t before = isolation.uncontended.tenants[i].p95_us;
    const std::uint64_t after = isolation.contended.tenants[i].p95_us;
    json << (i > 0 ? ", " : "")
         << (before > 0
                 ? static_cast<double>(after) / static_cast<double>(before)
                 : 0.0);
  }
  json << "],\n    \"rogue_shed_fraction\": "
       << isolation.rogue_shed_fraction << ",\n    \"isolation_ok\": "
       << (isolation.isolation_ok ? "true" : "false")
       << ",\n    \"reconcile_exact\": "
       << (isolation.reconcile_exact ? "true" : "false") << "\n  }\n}\n";
  json.close();
  std::printf("\nwrote %s\n", output.c_str());

  if (!trace_path.empty()) {
    std::printf("\nM-Scope traced scenario:\n");
    RunTraced(trace_path, metrics_path);
  }
  return 0;
}
