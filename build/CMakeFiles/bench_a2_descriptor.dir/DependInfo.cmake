
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a2_descriptor.cpp" "CMakeFiles/bench_a2_descriptor.dir/bench/bench_a2_descriptor.cpp.o" "gcc" "CMakeFiles/bench_a2_descriptor.dir/bench/bench_a2_descriptor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mobivine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/plugin/CMakeFiles/mobivine_plugin.dir/DependInfo.cmake"
  "/root/repo/build/src/s60/CMakeFiles/mobivine_s60.dir/DependInfo.cmake"
  "/root/repo/build/src/iphone/CMakeFiles/mobivine_iphone.dir/DependInfo.cmake"
  "/root/repo/build/src/webview/CMakeFiles/mobivine_webview.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/mobivine_android.dir/DependInfo.cmake"
  "/root/repo/build/src/minijs/CMakeFiles/mobivine_minijs.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mobivine_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/mobivine_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mobivine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mobivine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
