file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_descriptor.dir/bench/bench_a2_descriptor.cpp.o"
  "CMakeFiles/bench_a2_descriptor.dir/bench/bench_a2_descriptor.cpp.o.d"
  "bench/bench_a2_descriptor"
  "bench/bench_a2_descriptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_descriptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
