file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_bridge.dir/bench/bench_a3_bridge.cpp.o"
  "CMakeFiles/bench_a3_bridge.dir/bench/bench_a3_bridge.cpp.o.d"
  "bench/bench_a3_bridge"
  "bench/bench_a3_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
