file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_polling.dir/bench/bench_a1_polling.cpp.o"
  "CMakeFiles/bench_a1_polling.dir/bench/bench_a1_polling.cpp.o.d"
  "bench/bench_a1_polling"
  "bench/bench_a1_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
