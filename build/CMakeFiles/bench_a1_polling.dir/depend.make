# Empty dependencies file for bench_a1_polling.
# This may be replaced when dependencies are built.
