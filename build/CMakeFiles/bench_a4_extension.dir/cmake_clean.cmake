file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_extension.dir/bench/bench_a4_extension.cpp.o"
  "CMakeFiles/bench_a4_extension.dir/bench/bench_a4_extension.cpp.o.d"
  "bench/bench_a4_extension"
  "bench/bench_a4_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
