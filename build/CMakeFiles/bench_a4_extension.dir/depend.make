# Empty dependencies file for bench_a4_extension.
# This may be replaced when dependencies are built.
