# Empty dependencies file for bench_e4_maintenance.
# This may be replaced when dependencies are built.
