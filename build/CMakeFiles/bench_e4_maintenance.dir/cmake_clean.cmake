file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_maintenance.dir/bench/bench_e4_maintenance.cpp.o"
  "CMakeFiles/bench_e4_maintenance.dir/bench/bench_e4_maintenance.cpp.o.d"
  "bench/bench_e4_maintenance"
  "bench/bench_e4_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
