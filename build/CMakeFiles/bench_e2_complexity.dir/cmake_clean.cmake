file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_complexity.dir/bench/bench_e2_complexity.cpp.o"
  "CMakeFiles/bench_e2_complexity.dir/bench/bench_e2_complexity.cpp.o.d"
  "bench/bench_e2_complexity"
  "bench/bench_e2_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
