file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_portability.dir/bench/bench_e3_portability.cpp.o"
  "CMakeFiles/bench_e3_portability.dir/bench/bench_e3_portability.cpp.o.d"
  "bench/bench_e3_portability"
  "bench/bench_e3_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
