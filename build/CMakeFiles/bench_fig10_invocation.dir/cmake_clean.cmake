file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_invocation.dir/bench/bench_fig10_invocation.cpp.o"
  "CMakeFiles/bench_fig10_invocation.dir/bench/bench_fig10_invocation.cpp.o.d"
  "bench/bench_fig10_invocation"
  "bench/bench_fig10_invocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_invocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
