
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/android_platform_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/android_platform_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/android_platform_test.cpp.o.d"
  "/root/repo/tests/calendar_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/calendar_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/calendar_test.cpp.o.d"
  "/root/repo/tests/codegen_sweep_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/codegen_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/codegen_sweep_test.cpp.o.d"
  "/root/repo/tests/core_android_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/core_android_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/core_android_test.cpp.o.d"
  "/root/repo/tests/core_iphone_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/core_iphone_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/core_iphone_test.cpp.o.d"
  "/root/repo/tests/core_s60_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/core_s60_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/core_s60_test.cpp.o.d"
  "/root/repo/tests/core_webview_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/core_webview_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/core_webview_test.cpp.o.d"
  "/root/repo/tests/descriptor_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/descriptor_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/descriptor_test.cpp.o.d"
  "/root/repo/tests/device_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/device_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/device_test.cpp.o.d"
  "/root/repo/tests/enrichment_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/enrichment_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/enrichment_test.cpp.o.d"
  "/root/repo/tests/failure_injection_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/failure_injection_test.cpp.o.d"
  "/root/repo/tests/iphone_platform_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/iphone_platform_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/iphone_platform_test.cpp.o.d"
  "/root/repo/tests/minijs_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/minijs_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/minijs_test.cpp.o.d"
  "/root/repo/tests/misc_coverage_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/misc_coverage_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/misc_coverage_test.cpp.o.d"
  "/root/repo/tests/pim_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/pim_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/pim_test.cpp.o.d"
  "/root/repo/tests/plugin_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/plugin_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/plugin_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/registry_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/registry_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/registry_test.cpp.o.d"
  "/root/repo/tests/s60_platform_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/s60_platform_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/s60_platform_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/soak_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/soak_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/soak_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/webview_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/webview_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/webview_test.cpp.o.d"
  "/root/repo/tests/workforce_integration_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/workforce_integration_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/workforce_integration_test.cpp.o.d"
  "/root/repo/tests/xml_test.cpp" "tests/CMakeFiles/mobivine_tests.dir/xml_test.cpp.o" "gcc" "tests/CMakeFiles/mobivine_tests.dir/xml_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mobivine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/plugin/CMakeFiles/mobivine_plugin.dir/DependInfo.cmake"
  "/root/repo/build/src/s60/CMakeFiles/mobivine_s60.dir/DependInfo.cmake"
  "/root/repo/build/src/iphone/CMakeFiles/mobivine_iphone.dir/DependInfo.cmake"
  "/root/repo/build/src/webview/CMakeFiles/mobivine_webview.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/mobivine_android.dir/DependInfo.cmake"
  "/root/repo/build/src/minijs/CMakeFiles/mobivine_minijs.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mobivine_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/mobivine_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mobivine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mobivine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
