# Empty dependencies file for mobivine_tests.
# This may be replaced when dependencies are built.
