
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/android_platform.cpp" "src/android/CMakeFiles/mobivine_android.dir/android_platform.cpp.o" "gcc" "src/android/CMakeFiles/mobivine_android.dir/android_platform.cpp.o.d"
  "/root/repo/src/android/calendar.cpp" "src/android/CMakeFiles/mobivine_android.dir/calendar.cpp.o" "gcc" "src/android/CMakeFiles/mobivine_android.dir/calendar.cpp.o.d"
  "/root/repo/src/android/contacts.cpp" "src/android/CMakeFiles/mobivine_android.dir/contacts.cpp.o" "gcc" "src/android/CMakeFiles/mobivine_android.dir/contacts.cpp.o.d"
  "/root/repo/src/android/context.cpp" "src/android/CMakeFiles/mobivine_android.dir/context.cpp.o" "gcc" "src/android/CMakeFiles/mobivine_android.dir/context.cpp.o.d"
  "/root/repo/src/android/http_client.cpp" "src/android/CMakeFiles/mobivine_android.dir/http_client.cpp.o" "gcc" "src/android/CMakeFiles/mobivine_android.dir/http_client.cpp.o.d"
  "/root/repo/src/android/intent.cpp" "src/android/CMakeFiles/mobivine_android.dir/intent.cpp.o" "gcc" "src/android/CMakeFiles/mobivine_android.dir/intent.cpp.o.d"
  "/root/repo/src/android/location_manager.cpp" "src/android/CMakeFiles/mobivine_android.dir/location_manager.cpp.o" "gcc" "src/android/CMakeFiles/mobivine_android.dir/location_manager.cpp.o.d"
  "/root/repo/src/android/sms_manager.cpp" "src/android/CMakeFiles/mobivine_android.dir/sms_manager.cpp.o" "gcc" "src/android/CMakeFiles/mobivine_android.dir/sms_manager.cpp.o.d"
  "/root/repo/src/android/telephony.cpp" "src/android/CMakeFiles/mobivine_android.dir/telephony.cpp.o" "gcc" "src/android/CMakeFiles/mobivine_android.dir/telephony.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/mobivine_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mobivine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mobivine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
