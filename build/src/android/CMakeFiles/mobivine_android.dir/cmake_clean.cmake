file(REMOVE_RECURSE
  "CMakeFiles/mobivine_android.dir/android_platform.cpp.o"
  "CMakeFiles/mobivine_android.dir/android_platform.cpp.o.d"
  "CMakeFiles/mobivine_android.dir/calendar.cpp.o"
  "CMakeFiles/mobivine_android.dir/calendar.cpp.o.d"
  "CMakeFiles/mobivine_android.dir/contacts.cpp.o"
  "CMakeFiles/mobivine_android.dir/contacts.cpp.o.d"
  "CMakeFiles/mobivine_android.dir/context.cpp.o"
  "CMakeFiles/mobivine_android.dir/context.cpp.o.d"
  "CMakeFiles/mobivine_android.dir/http_client.cpp.o"
  "CMakeFiles/mobivine_android.dir/http_client.cpp.o.d"
  "CMakeFiles/mobivine_android.dir/intent.cpp.o"
  "CMakeFiles/mobivine_android.dir/intent.cpp.o.d"
  "CMakeFiles/mobivine_android.dir/location_manager.cpp.o"
  "CMakeFiles/mobivine_android.dir/location_manager.cpp.o.d"
  "CMakeFiles/mobivine_android.dir/sms_manager.cpp.o"
  "CMakeFiles/mobivine_android.dir/sms_manager.cpp.o.d"
  "CMakeFiles/mobivine_android.dir/telephony.cpp.o"
  "CMakeFiles/mobivine_android.dir/telephony.cpp.o.d"
  "libmobivine_android.a"
  "libmobivine_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
