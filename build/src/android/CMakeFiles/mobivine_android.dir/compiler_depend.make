# Empty compiler generated dependencies file for mobivine_android.
# This may be replaced when dependencies are built.
