file(REMOVE_RECURSE
  "libmobivine_android.a"
)
