
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/webview/bridge.cpp" "src/webview/CMakeFiles/mobivine_webview.dir/bridge.cpp.o" "gcc" "src/webview/CMakeFiles/mobivine_webview.dir/bridge.cpp.o.d"
  "/root/repo/src/webview/notification_table.cpp" "src/webview/CMakeFiles/mobivine_webview.dir/notification_table.cpp.o" "gcc" "src/webview/CMakeFiles/mobivine_webview.dir/notification_table.cpp.o.d"
  "/root/repo/src/webview/webview.cpp" "src/webview/CMakeFiles/mobivine_webview.dir/webview.cpp.o" "gcc" "src/webview/CMakeFiles/mobivine_webview.dir/webview.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/android/CMakeFiles/mobivine_android.dir/DependInfo.cmake"
  "/root/repo/build/src/minijs/CMakeFiles/mobivine_minijs.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/mobivine_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mobivine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mobivine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
