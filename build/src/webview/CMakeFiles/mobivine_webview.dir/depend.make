# Empty dependencies file for mobivine_webview.
# This may be replaced when dependencies are built.
