file(REMOVE_RECURSE
  "CMakeFiles/mobivine_webview.dir/bridge.cpp.o"
  "CMakeFiles/mobivine_webview.dir/bridge.cpp.o.d"
  "CMakeFiles/mobivine_webview.dir/notification_table.cpp.o"
  "CMakeFiles/mobivine_webview.dir/notification_table.cpp.o.d"
  "CMakeFiles/mobivine_webview.dir/webview.cpp.o"
  "CMakeFiles/mobivine_webview.dir/webview.cpp.o.d"
  "libmobivine_webview.a"
  "libmobivine_webview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_webview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
