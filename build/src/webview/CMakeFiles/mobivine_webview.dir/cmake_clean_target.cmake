file(REMOVE_RECURSE
  "libmobivine_webview.a"
)
