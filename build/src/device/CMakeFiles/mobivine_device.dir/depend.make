# Empty dependencies file for mobivine_device.
# This may be replaced when dependencies are built.
