file(REMOVE_RECURSE
  "CMakeFiles/mobivine_device.dir/calendar_store.cpp.o"
  "CMakeFiles/mobivine_device.dir/calendar_store.cpp.o.d"
  "CMakeFiles/mobivine_device.dir/cellular_modem.cpp.o"
  "CMakeFiles/mobivine_device.dir/cellular_modem.cpp.o.d"
  "CMakeFiles/mobivine_device.dir/contact_database.cpp.o"
  "CMakeFiles/mobivine_device.dir/contact_database.cpp.o.d"
  "CMakeFiles/mobivine_device.dir/gps_receiver.cpp.o"
  "CMakeFiles/mobivine_device.dir/gps_receiver.cpp.o.d"
  "CMakeFiles/mobivine_device.dir/http_message.cpp.o"
  "CMakeFiles/mobivine_device.dir/http_message.cpp.o.d"
  "CMakeFiles/mobivine_device.dir/mobile_device.cpp.o"
  "CMakeFiles/mobivine_device.dir/mobile_device.cpp.o.d"
  "CMakeFiles/mobivine_device.dir/network.cpp.o"
  "CMakeFiles/mobivine_device.dir/network.cpp.o.d"
  "libmobivine_device.a"
  "libmobivine_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
