file(REMOVE_RECURSE
  "libmobivine_device.a"
)
