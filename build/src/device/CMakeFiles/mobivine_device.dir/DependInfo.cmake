
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/calendar_store.cpp" "src/device/CMakeFiles/mobivine_device.dir/calendar_store.cpp.o" "gcc" "src/device/CMakeFiles/mobivine_device.dir/calendar_store.cpp.o.d"
  "/root/repo/src/device/cellular_modem.cpp" "src/device/CMakeFiles/mobivine_device.dir/cellular_modem.cpp.o" "gcc" "src/device/CMakeFiles/mobivine_device.dir/cellular_modem.cpp.o.d"
  "/root/repo/src/device/contact_database.cpp" "src/device/CMakeFiles/mobivine_device.dir/contact_database.cpp.o" "gcc" "src/device/CMakeFiles/mobivine_device.dir/contact_database.cpp.o.d"
  "/root/repo/src/device/gps_receiver.cpp" "src/device/CMakeFiles/mobivine_device.dir/gps_receiver.cpp.o" "gcc" "src/device/CMakeFiles/mobivine_device.dir/gps_receiver.cpp.o.d"
  "/root/repo/src/device/http_message.cpp" "src/device/CMakeFiles/mobivine_device.dir/http_message.cpp.o" "gcc" "src/device/CMakeFiles/mobivine_device.dir/http_message.cpp.o.d"
  "/root/repo/src/device/mobile_device.cpp" "src/device/CMakeFiles/mobivine_device.dir/mobile_device.cpp.o" "gcc" "src/device/CMakeFiles/mobivine_device.dir/mobile_device.cpp.o.d"
  "/root/repo/src/device/network.cpp" "src/device/CMakeFiles/mobivine_device.dir/network.cpp.o" "gcc" "src/device/CMakeFiles/mobivine_device.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mobivine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mobivine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
