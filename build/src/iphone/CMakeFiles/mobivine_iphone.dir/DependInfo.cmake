
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iphone/address_book.cpp" "src/iphone/CMakeFiles/mobivine_iphone.dir/address_book.cpp.o" "gcc" "src/iphone/CMakeFiles/mobivine_iphone.dir/address_book.cpp.o.d"
  "/root/repo/src/iphone/core_location.cpp" "src/iphone/CMakeFiles/mobivine_iphone.dir/core_location.cpp.o" "gcc" "src/iphone/CMakeFiles/mobivine_iphone.dir/core_location.cpp.o.d"
  "/root/repo/src/iphone/iphone_platform.cpp" "src/iphone/CMakeFiles/mobivine_iphone.dir/iphone_platform.cpp.o" "gcc" "src/iphone/CMakeFiles/mobivine_iphone.dir/iphone_platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/mobivine_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mobivine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mobivine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
