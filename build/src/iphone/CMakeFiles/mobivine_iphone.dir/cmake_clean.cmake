file(REMOVE_RECURSE
  "CMakeFiles/mobivine_iphone.dir/address_book.cpp.o"
  "CMakeFiles/mobivine_iphone.dir/address_book.cpp.o.d"
  "CMakeFiles/mobivine_iphone.dir/core_location.cpp.o"
  "CMakeFiles/mobivine_iphone.dir/core_location.cpp.o.d"
  "CMakeFiles/mobivine_iphone.dir/iphone_platform.cpp.o"
  "CMakeFiles/mobivine_iphone.dir/iphone_platform.cpp.o.d"
  "libmobivine_iphone.a"
  "libmobivine_iphone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_iphone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
