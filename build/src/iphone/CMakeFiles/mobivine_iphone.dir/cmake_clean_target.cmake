file(REMOVE_RECURSE
  "libmobivine_iphone.a"
)
