# Empty compiler generated dependencies file for mobivine_iphone.
# This may be replaced when dependencies are built.
