# Empty compiler generated dependencies file for mobivine_support.
# This may be replaced when dependencies are built.
