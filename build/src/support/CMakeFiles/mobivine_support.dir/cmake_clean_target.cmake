file(REMOVE_RECURSE
  "libmobivine_support.a"
)
