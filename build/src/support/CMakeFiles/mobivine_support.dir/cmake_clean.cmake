file(REMOVE_RECURSE
  "CMakeFiles/mobivine_support.dir/geo_units.cpp.o"
  "CMakeFiles/mobivine_support.dir/geo_units.cpp.o.d"
  "CMakeFiles/mobivine_support.dir/logging.cpp.o"
  "CMakeFiles/mobivine_support.dir/logging.cpp.o.d"
  "CMakeFiles/mobivine_support.dir/strings.cpp.o"
  "CMakeFiles/mobivine_support.dir/strings.cpp.o.d"
  "libmobivine_support.a"
  "libmobivine_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
