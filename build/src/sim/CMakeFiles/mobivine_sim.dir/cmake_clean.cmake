file(REMOVE_RECURSE
  "CMakeFiles/mobivine_sim.dir/geo_track.cpp.o"
  "CMakeFiles/mobivine_sim.dir/geo_track.cpp.o.d"
  "CMakeFiles/mobivine_sim.dir/latency_model.cpp.o"
  "CMakeFiles/mobivine_sim.dir/latency_model.cpp.o.d"
  "CMakeFiles/mobivine_sim.dir/scheduler.cpp.o"
  "CMakeFiles/mobivine_sim.dir/scheduler.cpp.o.d"
  "libmobivine_sim.a"
  "libmobivine_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
