# Empty compiler generated dependencies file for mobivine_sim.
# This may be replaced when dependencies are built.
