file(REMOVE_RECURSE
  "libmobivine_sim.a"
)
