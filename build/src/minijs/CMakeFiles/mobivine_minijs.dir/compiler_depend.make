# Empty compiler generated dependencies file for mobivine_minijs.
# This may be replaced when dependencies are built.
