
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minijs/interpreter.cpp" "src/minijs/CMakeFiles/mobivine_minijs.dir/interpreter.cpp.o" "gcc" "src/minijs/CMakeFiles/mobivine_minijs.dir/interpreter.cpp.o.d"
  "/root/repo/src/minijs/lexer.cpp" "src/minijs/CMakeFiles/mobivine_minijs.dir/lexer.cpp.o" "gcc" "src/minijs/CMakeFiles/mobivine_minijs.dir/lexer.cpp.o.d"
  "/root/repo/src/minijs/parser.cpp" "src/minijs/CMakeFiles/mobivine_minijs.dir/parser.cpp.o" "gcc" "src/minijs/CMakeFiles/mobivine_minijs.dir/parser.cpp.o.d"
  "/root/repo/src/minijs/value.cpp" "src/minijs/CMakeFiles/mobivine_minijs.dir/value.cpp.o" "gcc" "src/minijs/CMakeFiles/mobivine_minijs.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mobivine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
