file(REMOVE_RECURSE
  "libmobivine_minijs.a"
)
