file(REMOVE_RECURSE
  "CMakeFiles/mobivine_minijs.dir/interpreter.cpp.o"
  "CMakeFiles/mobivine_minijs.dir/interpreter.cpp.o.d"
  "CMakeFiles/mobivine_minijs.dir/lexer.cpp.o"
  "CMakeFiles/mobivine_minijs.dir/lexer.cpp.o.d"
  "CMakeFiles/mobivine_minijs.dir/parser.cpp.o"
  "CMakeFiles/mobivine_minijs.dir/parser.cpp.o.d"
  "CMakeFiles/mobivine_minijs.dir/value.cpp.o"
  "CMakeFiles/mobivine_minijs.dir/value.cpp.o.d"
  "libmobivine_minijs.a"
  "libmobivine_minijs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_minijs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
