
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/xml_node.cpp" "src/xml/CMakeFiles/mobivine_xml.dir/xml_node.cpp.o" "gcc" "src/xml/CMakeFiles/mobivine_xml.dir/xml_node.cpp.o.d"
  "/root/repo/src/xml/xml_parser.cpp" "src/xml/CMakeFiles/mobivine_xml.dir/xml_parser.cpp.o" "gcc" "src/xml/CMakeFiles/mobivine_xml.dir/xml_parser.cpp.o.d"
  "/root/repo/src/xml/xml_schema.cpp" "src/xml/CMakeFiles/mobivine_xml.dir/xml_schema.cpp.o" "gcc" "src/xml/CMakeFiles/mobivine_xml.dir/xml_schema.cpp.o.d"
  "/root/repo/src/xml/xml_writer.cpp" "src/xml/CMakeFiles/mobivine_xml.dir/xml_writer.cpp.o" "gcc" "src/xml/CMakeFiles/mobivine_xml.dir/xml_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mobivine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
