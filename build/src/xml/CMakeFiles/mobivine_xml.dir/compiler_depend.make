# Empty compiler generated dependencies file for mobivine_xml.
# This may be replaced when dependencies are built.
