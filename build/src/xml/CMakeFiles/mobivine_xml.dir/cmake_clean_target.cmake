file(REMOVE_RECURSE
  "libmobivine_xml.a"
)
