file(REMOVE_RECURSE
  "CMakeFiles/mobivine_xml.dir/xml_node.cpp.o"
  "CMakeFiles/mobivine_xml.dir/xml_node.cpp.o.d"
  "CMakeFiles/mobivine_xml.dir/xml_parser.cpp.o"
  "CMakeFiles/mobivine_xml.dir/xml_parser.cpp.o.d"
  "CMakeFiles/mobivine_xml.dir/xml_schema.cpp.o"
  "CMakeFiles/mobivine_xml.dir/xml_schema.cpp.o.d"
  "CMakeFiles/mobivine_xml.dir/xml_writer.cpp.o"
  "CMakeFiles/mobivine_xml.dir/xml_writer.cpp.o.d"
  "libmobivine_xml.a"
  "libmobivine_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
