# Empty dependencies file for mobivine_s60.
# This may be replaced when dependencies are built.
