file(REMOVE_RECURSE
  "libmobivine_s60.a"
)
