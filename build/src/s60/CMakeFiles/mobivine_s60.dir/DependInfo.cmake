
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/s60/connector.cpp" "src/s60/CMakeFiles/mobivine_s60.dir/connector.cpp.o" "gcc" "src/s60/CMakeFiles/mobivine_s60.dir/connector.cpp.o.d"
  "/root/repo/src/s60/location_provider.cpp" "src/s60/CMakeFiles/mobivine_s60.dir/location_provider.cpp.o" "gcc" "src/s60/CMakeFiles/mobivine_s60.dir/location_provider.cpp.o.d"
  "/root/repo/src/s60/messaging.cpp" "src/s60/CMakeFiles/mobivine_s60.dir/messaging.cpp.o" "gcc" "src/s60/CMakeFiles/mobivine_s60.dir/messaging.cpp.o.d"
  "/root/repo/src/s60/midlet.cpp" "src/s60/CMakeFiles/mobivine_s60.dir/midlet.cpp.o" "gcc" "src/s60/CMakeFiles/mobivine_s60.dir/midlet.cpp.o.d"
  "/root/repo/src/s60/pim.cpp" "src/s60/CMakeFiles/mobivine_s60.dir/pim.cpp.o" "gcc" "src/s60/CMakeFiles/mobivine_s60.dir/pim.cpp.o.d"
  "/root/repo/src/s60/s60_platform.cpp" "src/s60/CMakeFiles/mobivine_s60.dir/s60_platform.cpp.o" "gcc" "src/s60/CMakeFiles/mobivine_s60.dir/s60_platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/mobivine_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mobivine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mobivine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
