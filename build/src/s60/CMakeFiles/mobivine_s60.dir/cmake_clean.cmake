file(REMOVE_RECURSE
  "CMakeFiles/mobivine_s60.dir/connector.cpp.o"
  "CMakeFiles/mobivine_s60.dir/connector.cpp.o.d"
  "CMakeFiles/mobivine_s60.dir/location_provider.cpp.o"
  "CMakeFiles/mobivine_s60.dir/location_provider.cpp.o.d"
  "CMakeFiles/mobivine_s60.dir/messaging.cpp.o"
  "CMakeFiles/mobivine_s60.dir/messaging.cpp.o.d"
  "CMakeFiles/mobivine_s60.dir/midlet.cpp.o"
  "CMakeFiles/mobivine_s60.dir/midlet.cpp.o.d"
  "CMakeFiles/mobivine_s60.dir/pim.cpp.o"
  "CMakeFiles/mobivine_s60.dir/pim.cpp.o.d"
  "CMakeFiles/mobivine_s60.dir/s60_platform.cpp.o"
  "CMakeFiles/mobivine_s60.dir/s60_platform.cpp.o.d"
  "libmobivine_s60.a"
  "libmobivine_s60.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_s60.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
