file(REMOVE_RECURSE
  "libmobivine_core.a"
)
