# Empty dependencies file for mobivine_core.
# This may be replaced when dependencies are built.
