
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bindings/android_bindings.cpp" "src/core/CMakeFiles/mobivine_core.dir/bindings/android_bindings.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/bindings/android_bindings.cpp.o.d"
  "/root/repo/src/core/bindings/iphone_bindings.cpp" "src/core/CMakeFiles/mobivine_core.dir/bindings/iphone_bindings.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/bindings/iphone_bindings.cpp.o.d"
  "/root/repo/src/core/bindings/s60_bindings.cpp" "src/core/CMakeFiles/mobivine_core.dir/bindings/s60_bindings.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/bindings/s60_bindings.cpp.o.d"
  "/root/repo/src/core/bindings/webview_proxies.cpp" "src/core/CMakeFiles/mobivine_core.dir/bindings/webview_proxies.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/bindings/webview_proxies.cpp.o.d"
  "/root/repo/src/core/descriptor/planes.cpp" "src/core/CMakeFiles/mobivine_core.dir/descriptor/planes.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/descriptor/planes.cpp.o.d"
  "/root/repo/src/core/descriptor/proxy_descriptor.cpp" "src/core/CMakeFiles/mobivine_core.dir/descriptor/proxy_descriptor.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/descriptor/proxy_descriptor.cpp.o.d"
  "/root/repo/src/core/descriptor/schemas.cpp" "src/core/CMakeFiles/mobivine_core.dir/descriptor/schemas.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/descriptor/schemas.cpp.o.d"
  "/root/repo/src/core/enrichment.cpp" "src/core/CMakeFiles/mobivine_core.dir/enrichment.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/enrichment.cpp.o.d"
  "/root/repo/src/core/errors.cpp" "src/core/CMakeFiles/mobivine_core.dir/errors.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/errors.cpp.o.d"
  "/root/repo/src/core/location_proxy.cpp" "src/core/CMakeFiles/mobivine_core.dir/location_proxy.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/location_proxy.cpp.o.d"
  "/root/repo/src/core/meter.cpp" "src/core/CMakeFiles/mobivine_core.dir/meter.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/meter.cpp.o.d"
  "/root/repo/src/core/proxy.cpp" "src/core/CMakeFiles/mobivine_core.dir/proxy.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/proxy.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/mobivine_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/uniform_types.cpp" "src/core/CMakeFiles/mobivine_core.dir/uniform_types.cpp.o" "gcc" "src/core/CMakeFiles/mobivine_core.dir/uniform_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/android/CMakeFiles/mobivine_android.dir/DependInfo.cmake"
  "/root/repo/build/src/s60/CMakeFiles/mobivine_s60.dir/DependInfo.cmake"
  "/root/repo/build/src/iphone/CMakeFiles/mobivine_iphone.dir/DependInfo.cmake"
  "/root/repo/build/src/webview/CMakeFiles/mobivine_webview.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mobivine_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/mobivine_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mobivine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/minijs/CMakeFiles/mobivine_minijs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mobivine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
