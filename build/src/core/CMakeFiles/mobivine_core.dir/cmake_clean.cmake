file(REMOVE_RECURSE
  "CMakeFiles/mobivine_core.dir/bindings/android_bindings.cpp.o"
  "CMakeFiles/mobivine_core.dir/bindings/android_bindings.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/bindings/iphone_bindings.cpp.o"
  "CMakeFiles/mobivine_core.dir/bindings/iphone_bindings.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/bindings/s60_bindings.cpp.o"
  "CMakeFiles/mobivine_core.dir/bindings/s60_bindings.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/bindings/webview_proxies.cpp.o"
  "CMakeFiles/mobivine_core.dir/bindings/webview_proxies.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/descriptor/planes.cpp.o"
  "CMakeFiles/mobivine_core.dir/descriptor/planes.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/descriptor/proxy_descriptor.cpp.o"
  "CMakeFiles/mobivine_core.dir/descriptor/proxy_descriptor.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/descriptor/schemas.cpp.o"
  "CMakeFiles/mobivine_core.dir/descriptor/schemas.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/enrichment.cpp.o"
  "CMakeFiles/mobivine_core.dir/enrichment.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/errors.cpp.o"
  "CMakeFiles/mobivine_core.dir/errors.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/location_proxy.cpp.o"
  "CMakeFiles/mobivine_core.dir/location_proxy.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/meter.cpp.o"
  "CMakeFiles/mobivine_core.dir/meter.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/proxy.cpp.o"
  "CMakeFiles/mobivine_core.dir/proxy.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/registry.cpp.o"
  "CMakeFiles/mobivine_core.dir/registry.cpp.o.d"
  "CMakeFiles/mobivine_core.dir/uniform_types.cpp.o"
  "CMakeFiles/mobivine_core.dir/uniform_types.cpp.o.d"
  "libmobivine_core.a"
  "libmobivine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
