# Empty compiler generated dependencies file for mobivine_plugin.
# This may be replaced when dependencies are built.
