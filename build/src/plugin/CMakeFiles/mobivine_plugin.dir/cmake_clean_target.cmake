file(REMOVE_RECURSE
  "libmobivine_plugin.a"
)
