file(REMOVE_RECURSE
  "CMakeFiles/mobivine_plugin.dir/codegen.cpp.o"
  "CMakeFiles/mobivine_plugin.dir/codegen.cpp.o.d"
  "CMakeFiles/mobivine_plugin.dir/configuration.cpp.o"
  "CMakeFiles/mobivine_plugin.dir/configuration.cpp.o.d"
  "CMakeFiles/mobivine_plugin.dir/drawer.cpp.o"
  "CMakeFiles/mobivine_plugin.dir/drawer.cpp.o.d"
  "CMakeFiles/mobivine_plugin.dir/metrics.cpp.o"
  "CMakeFiles/mobivine_plugin.dir/metrics.cpp.o.d"
  "CMakeFiles/mobivine_plugin.dir/packaging.cpp.o"
  "CMakeFiles/mobivine_plugin.dir/packaging.cpp.o.d"
  "libmobivine_plugin.a"
  "libmobivine_plugin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobivine_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
