# Empty compiler generated dependencies file for workforce_management.
# This may be replaced when dependencies are built.
