file(REMOVE_RECURSE
  "CMakeFiles/workforce_management.dir/workforce_management.cpp.o"
  "CMakeFiles/workforce_management.dir/workforce_management.cpp.o.d"
  "workforce_management"
  "workforce_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workforce_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
