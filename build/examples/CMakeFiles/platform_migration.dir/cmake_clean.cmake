file(REMOVE_RECURSE
  "CMakeFiles/platform_migration.dir/platform_migration.cpp.o"
  "CMakeFiles/platform_migration.dir/platform_migration.cpp.o.d"
  "platform_migration"
  "platform_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
