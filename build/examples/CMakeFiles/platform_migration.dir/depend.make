# Empty dependencies file for platform_migration.
# This may be replaced when dependencies are built.
