# Empty compiler generated dependencies file for contact_dispatch.
# This may be replaced when dependencies are built.
