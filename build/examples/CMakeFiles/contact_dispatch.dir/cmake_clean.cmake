file(REMOVE_RECURSE
  "CMakeFiles/contact_dispatch.dir/contact_dispatch.cpp.o"
  "CMakeFiles/contact_dispatch.dir/contact_dispatch.cpp.o.d"
  "contact_dispatch"
  "contact_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contact_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
