file(REMOVE_RECURSE
  "CMakeFiles/codegen_tool.dir/codegen_tool.cpp.o"
  "CMakeFiles/codegen_tool.dir/codegen_tool.cpp.o.d"
  "codegen_tool"
  "codegen_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
