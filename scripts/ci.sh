#!/usr/bin/env bash
# CI entry point: build + test the matrix of presets a change must survive.
#
#   default  RelWithDebInfo, the configuration developers and benches use
#   asan     Debug + AddressSanitizer
#   ubsan    Debug + UndefinedBehaviorSanitizer
#
# The tsan preset (gateway/failover/interner/wire/cluster/push/script/
# fleet concurrency checking) is not in the default matrix because a
# full-suite TSan run is slow; the wire leg below runs a *filtered* TSan
# pass (-R 'Script|Push|Cluster|Wire|Gateway|Tenant|Fleet') instead.
# Opt in to the full suite with
#   MOBIVINE_CI_PRESETS="default asan ubsan tsan" scripts/ci.sh
# or run it directly:
#   cmake --preset tsan && cmake --build build-tsan -j && \
#     ctest --test-dir build-tsan \
#       -R 'Gateway|Failover|Interner|Wire|Cluster|Push|Script' \
#       --output-on-failure
set -euo pipefail

cd "$(dirname "$0")/.."

# Docs leg first: it needs no build and fails fast. Every relative link
# and #anchor across README/DESIGN/EXPERIMENTS/CHANGES/docs must resolve.
echo "==== [docs] markdown cross-reference check ===="
python3 scripts/check_docs.py

PRESETS=${MOBIVINE_CI_PRESETS:-"default asan ubsan"}
JOBS=${MOBIVINE_CI_JOBS:-$(nproc)}

# Known-by-design shared_ptr cycles in the MiniJS interpreter (see the
# comments in scripts/lsan.supp); everything else must stay leak-clean.
export LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp${LSAN_OPTIONS:+:$LSAN_OPTIONS}"

for preset in $PRESETS; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$JOBS" --output-on-failure
done

# M-Scope leg: run the trace-enabled gateway scenario and validate both
# exporter outputs against the checked-in schema. A malformed or empty
# export (or a trace missing either layer's spans) fails the build.
echo "==== [mscope] traced gateway bench + export validation ===="
MSCOPE_DIR=$(mktemp -d)
trap 'rm -rf "$MSCOPE_DIR"' EXIT
./build/bench/bench_gateway_throughput "$MSCOPE_DIR/bench.json" \
  --trace-only --trace "$MSCOPE_DIR/trace.json" \
  --metrics "$MSCOPE_DIR/metrics.json"
python3 scripts/validate_mscope.py \
  "$MSCOPE_DIR/trace.json" "$MSCOPE_DIR/metrics.json" \
  scripts/mscope_schema.json

# M-Wire leg: the socket front-end's traced scenario must export wire.*
# spans on labeled wire-loop threads plus wire.* counters that reconcile
# with the gateway's (every submission in that run crossed a real socket),
# and the epoll reactor + client must be race-clean under TSan. The TSan
# pass is filtered to the wire/gateway suites so it stays fast; skip it
# with MOBIVINE_CI_WIRE_TSAN=0 (e.g. when the full tsan preset already ran).
echo "==== [wire] traced wire bench + export validation ===="
./build/bench/bench_wire_throughput "$MSCOPE_DIR/wire_bench.json" \
  --trace-only --trace "$MSCOPE_DIR/wire_trace.json" \
  --metrics "$MSCOPE_DIR/wire_metrics.json"
python3 scripts/validate_mscope.py \
  "$MSCOPE_DIR/wire_trace.json" "$MSCOPE_DIR/wire_metrics.json" \
  scripts/mscope_schema.json --require-wire

# Wire perf smoke: a shortened bench run whose wire/in-process ratio
# (measured by the same binary in the same run, so host speed cancels)
# must clear the checked-in floor — scripts/wire_perf_floor.json
# documents the tolerance. Skip with MOBIVINE_CI_WIRE_PERF=0 on hosts
# too noisy to bench (the floor assumes a mostly-idle machine).
if [[ "${MOBIVINE_CI_WIRE_PERF:-1}" != "0" ]]; then
  echo "==== [wire] perf smoke vs checked-in floor ===="
  ./build/bench/bench_wire_throughput "$MSCOPE_DIR/wire_perf.json" --smoke
  python3 scripts/check_wire_perf.py "$MSCOPE_DIR/wire_perf.json" \
    scripts/wire_perf_floor.json
fi

# M-Cluster leg: the distributed topology's traced scenario (controller
# + worker + plan-routing client, all over real loopback TCP) must
# export cluster.* control-plane events and counters — a published plan
# (epoch >= 1), live heartbeats, labeled cluster-ctrl/cluster-agent
# threads — alongside the usual gateway.* and wire.* planes.
echo "==== [cluster] traced cluster bench + export validation ===="
./build/bench/bench_cluster_throughput "$MSCOPE_DIR/cluster_bench.json" \
  --trace-only --trace "$MSCOPE_DIR/cluster_trace.json" \
  --metrics "$MSCOPE_DIR/cluster_metrics.json"
python3 scripts/validate_mscope.py \
  "$MSCOPE_DIR/cluster_trace.json" "$MSCOPE_DIR/cluster_metrics.json" \
  scripts/mscope_schema.json --require-wire --require-cluster

# M-Push leg: the subscription plane's traced scenario (a live
# subscription with cursor replay plus mixed request traffic on the
# same connection) must export push.* events and the PushFeed/wire
# subscription counters — at least one subscription opened, events
# published, and events delivered — alongside the request plane.
echo "==== [push] traced push bench + export validation ===="
./build/bench/bench_push_throughput "$MSCOPE_DIR/push_bench.json" \
  --trace-only --trace "$MSCOPE_DIR/push_trace.json" \
  --metrics "$MSCOPE_DIR/push_metrics.json"
python3 scripts/validate_mscope.py \
  "$MSCOPE_DIR/push_trace.json" "$MSCOPE_DIR/push_metrics.json" \
  scripts/mscope_schema.json --require-wire --require-push

# M-Script leg: the composite-invocation plane's traced scenario (a mix
# of composite scripts, deliberately hostile scripts that must die on
# budget, and ordinary request traffic) must export the script.run
# execution span and the script.* counters — scripts executed, at least
# one budget kill proving the sandbox fires — and the wire dispatch
# reconcile must still balance with scripts in the mix.
echo "==== [script] traced script bench + export validation ===="
./build/bench/bench_script_throughput "$MSCOPE_DIR/script_bench.json" \
  --trace-only --trace "$MSCOPE_DIR/script_trace.json" \
  --metrics "$MSCOPE_DIR/script_metrics.json"
python3 scripts/validate_mscope.py \
  "$MSCOPE_DIR/script_trace.json" "$MSCOPE_DIR/script_metrics.json" \
  scripts/mscope_schema.json --require-wire --require-script

# M-Fleet leg: the device-fleet simulator's traced scenario (two tenants
# of flyweight devices driving the gateway open-loop) must export the
# fleet.run span on labeled fleet-gen-N producer threads, the fleet.*
# counters (quiescent: completed == submitted), and per-tenant
# gateway.tenant.<name>.* rows that each reconcile exactly.
echo "==== [fleet] traced fleet bench + export validation ===="
./build/bench/bench_fleet_throughput "$MSCOPE_DIR/fleet_bench.json" \
  --trace-only --trace "$MSCOPE_DIR/fleet_trace.json" \
  --metrics "$MSCOPE_DIR/fleet_metrics.json"
python3 scripts/validate_mscope.py \
  "$MSCOPE_DIR/fleet_trace.json" "$MSCOPE_DIR/fleet_metrics.json" \
  scripts/mscope_schema.json --require-fleet

if [[ "${MOBIVINE_CI_WIRE_TSAN:-1}" != "0" ]]; then
  echo "==== [wire] tsan: Script|Push|Cluster|Wire|Gateway|Tenant|Fleet suites ===="
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS"
  ctest --test-dir build-tsan \
    -R 'Script|Push|Cluster|Wire|Gateway|Tenant|Fleet' -j "$JOBS" \
    --output-on-failure
fi

echo "==== all presets green: $PRESETS (+ docs, mscope, wire, cluster, push, script, fleet) ===="
