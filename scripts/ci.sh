#!/usr/bin/env bash
# CI entry point: build + test the matrix of presets a change must survive.
#
#   default  RelWithDebInfo, the configuration developers and benches use
#   asan     Debug + AddressSanitizer
#   ubsan    Debug + UndefinedBehaviorSanitizer
#
# The tsan preset (gateway/failover/interner concurrency checking) is not
# in the default matrix because a full-suite TSan run is slow; opt in with
#   MOBIVINE_CI_PRESETS="default asan ubsan tsan" scripts/ci.sh
# or run it directly:
#   cmake --preset tsan && cmake --build build-tsan -j && \
#     ctest --test-dir build-tsan -R 'Gateway|Failover|Interner' --output-on-failure
set -euo pipefail

cd "$(dirname "$0")/.."

# Docs leg first: it needs no build and fails fast. Every relative link
# and #anchor across README/DESIGN/EXPERIMENTS/CHANGES/docs must resolve.
echo "==== [docs] markdown cross-reference check ===="
python3 scripts/check_docs.py

PRESETS=${MOBIVINE_CI_PRESETS:-"default asan ubsan"}
JOBS=${MOBIVINE_CI_JOBS:-$(nproc)}

# Known-by-design shared_ptr cycles in the MiniJS interpreter (see the
# comments in scripts/lsan.supp); everything else must stay leak-clean.
export LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp${LSAN_OPTIONS:+:$LSAN_OPTIONS}"

for preset in $PRESETS; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$JOBS" --output-on-failure
done

# M-Scope leg: run the trace-enabled gateway scenario and validate both
# exporter outputs against the checked-in schema. A malformed or empty
# export (or a trace missing either layer's spans) fails the build.
echo "==== [mscope] traced gateway bench + export validation ===="
MSCOPE_DIR=$(mktemp -d)
trap 'rm -rf "$MSCOPE_DIR"' EXIT
./build/bench/bench_gateway_throughput "$MSCOPE_DIR/bench.json" \
  --trace-only --trace "$MSCOPE_DIR/trace.json" \
  --metrics "$MSCOPE_DIR/metrics.json"
python3 scripts/validate_mscope.py \
  "$MSCOPE_DIR/trace.json" "$MSCOPE_DIR/metrics.json" \
  scripts/mscope_schema.json

echo "==== all presets green: $PRESETS (+ docs, mscope) ===="
