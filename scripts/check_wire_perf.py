#!/usr/bin/env python3
"""CI perf smoke for the M-Wire front-end.

Usage:
    python3 scripts/check_wire_perf.py BENCH.json [FLOOR.json]

BENCH.json is bench_wire_throughput output (usually from a --smoke run);
FLOOR.json defaults to scripts/wire_perf_floor.json. Stdlib-only (CI
must not install packages).

Two assertions, both against the bench's own "overhead" summary:

  * wire_over_in_process >= min_wire_over_in_process — the wire path
    must stay within its priced overhead band of the in-process
    baseline measured by the same binary in the same run (so host speed
    cancels out; see the floor file for the tolerance rationale);
  * frame_buffer_allocs_per_req <= max_frame_buffer_allocs_per_req —
    the pooled-buffer no-allocation claim, which is ~0 at steady state
    and jumps by whole allocations per request when a copy sneaks back
    into the frame path.

Exit code 0 on success, 1 with a message on any failure.
"""

import json
import pathlib
import sys


def fail(message: str) -> None:
    print(f"check_wire_perf: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        fail(f"usage: {argv[0]} BENCH.json [FLOOR.json]")
    bench_path = pathlib.Path(argv[1])
    floor_path = (pathlib.Path(argv[2]) if len(argv) == 3 else
                  pathlib.Path(__file__).parent / "wire_perf_floor.json")
    try:
        bench = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot read bench output {bench_path}: {error}")
    try:
        floor = json.loads(floor_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot read floor file {floor_path}: {error}")

    overhead = bench.get("overhead")
    if not isinstance(overhead, dict):
        fail(f"{bench_path}: no 'overhead' summary — wrong or partial file?")

    ratio = overhead.get("wire_over_in_process")
    min_ratio = floor["min_wire_over_in_process"]
    if not isinstance(ratio, (int, float)):
        fail(f"{bench_path}: overhead.wire_over_in_process missing")
    if ratio < min_ratio:
        fail(
            f"wire_over_in_process {ratio:.4f} below floor {min_ratio} "
            f"(best pipelined wire {overhead.get('best_pipelined_wire_rps')} "
            f"req/s vs in-process {overhead.get('in_process_rps')} req/s) — "
            "the wire path regressed structurally; see "
            f"{floor_path.name} before touching the floor"
        )

    allocs = overhead.get("frame_buffer_allocs_per_req")
    max_allocs = floor.get("max_frame_buffer_allocs_per_req")
    if max_allocs is not None:
        if not isinstance(allocs, (int, float)):
            fail(f"{bench_path}: overhead.frame_buffer_allocs_per_req missing")
        if allocs > max_allocs:
            fail(
                f"frame_buffer_allocs_per_req {allocs:.4f} above cap "
                f"{max_allocs} — per-frame heap allocation is back on the "
                "wire hot path"
            )

    print(
        f"check_wire_perf: OK: wire_over_in_process {ratio:.4f} "
        f">= {min_ratio}, frame_buffer_allocs_per_req "
        f"{float(allocs):.4f} <= {max_allocs}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
