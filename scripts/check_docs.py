#!/usr/bin/env python3
"""Validate markdown cross-references across the repo's documentation.

Checks every relative link and ``#anchor`` reference in README.md,
DESIGN.md, EXPERIMENTS.md, CHANGES.md and docs/**/*.md:

* relative link targets must exist on disk;
* ``#anchor`` fragments (same-file or on a linked markdown file) must
  match a heading in the target, using GitHub's slugification rules
  (lowercase, punctuation stripped, spaces to hyphens, ``-1``/``-2``
  suffixes for duplicates);
* absolute URLs (http/https/mailto) are ignored — this is a
  cross-reference check, not a dead-link crawler.

Links inside fenced code blocks and inline code spans are not links.
Exits non-zero listing every dangling reference as ``file:line``.

Stdlib only; run from anywhere: python3 scripts/check_docs.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ROOT_DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGES.md"]

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
INLINE_CODE_RE = re.compile(r"`[^`]*`")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, mailto:, ...


def doc_files():
    files = [REPO / name for name in ROOT_DOCS if (REPO / name).exists()]
    files += sorted((REPO / "docs").glob("**/*.md"))
    return files


def github_slug(heading, seen):
    """GitHub's anchor algorithm: strip punctuation, hyphenate spaces,
    then disambiguate repeats with -1, -2, ..."""
    slug = heading.strip().lower()
    slug = slug.replace("`", "")
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def scan(path):
    """Return (anchors, links) for one markdown file; links are
    (line_number, target) with code blocks/spans already removed."""
    anchors = set()
    links = []
    seen = {}
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        heading = HEADING_RE.match(line)
        if heading:
            anchors.add(github_slug(heading.group(2), seen))
            continue
        for match in LINK_RE.finditer(INLINE_CODE_RE.sub("", line)):
            links.append((number, match.group(1)))
    return anchors, links


def main():
    scanned = {path.resolve(): scan(path) for path in doc_files()}
    errors = []
    total_links = 0

    for path, (_, links) in sorted(scanned.items()):
        rel = path.relative_to(REPO)
        for number, target in links:
            if EXTERNAL_RE.match(target):
                continue
            total_links += 1
            raw_path, _, fragment = target.partition("#")
            if raw_path:
                resolved = (path.parent / raw_path).resolve()
                if not resolved.exists():
                    errors.append(f"{rel}:{number}: broken link: {target}")
                    continue
            else:
                resolved = path  # pure "#anchor" reference
            if fragment:
                if resolved.suffix != ".md":
                    continue  # anchors into non-markdown are out of scope
                if resolved not in scanned:
                    # a markdown file outside the checked set
                    # (e.g. ROADMAP.md): scan it on demand
                    scanned[resolved] = scan(resolved)
                if fragment not in scanned[resolved][0]:
                    errors.append(
                        f"{rel}:{number}: dangling anchor: {target}")

    if errors:
        print(f"check_docs: {len(errors)} dangling reference(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"check_docs: OK — {len(scanned)} files, {total_links} relative "
          "links, all targets and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
