#!/usr/bin/env python3
"""Validate M-Scope exporter output against scripts/mscope_schema.json.

Usage:
    python3 scripts/validate_mscope.py TRACE.json METRICS.json \
        [SCHEMA.json] [--require-wire] [--require-cluster] \
        [--require-push] [--require-script] [--require-fleet]

Stdlib-only (CI must not install packages). Two validation layers:

 1. Structural: a miniature JSON-Schema checker supporting the subset the
    checked-in schema uses (type, required, properties, items, enum,
    minItems, minimum, additionalProperties).
 2. Semantic, for the things a schema cannot express:
      * spans from BOTH layers are present (gateway.* serving spans and
        core.*/op.* invocation spans);
      * at least one core invocation span nests (by time) inside a
        gateway.attempt span on the same tid — the cross-layer
        containment the trace exists to show;
      * op instants carry virtual-cost attribution args;
      * metrics counters reconcile (completions == accepted).

With --require-wire (the wire bench's CI leg) the export must also show
the M-Wire front-end: the schema's "wire" section lists the required
wire.* spans and metric series plus the event-loop thread-name prefix,
and wire.requests_dispatched must reconcile with the gateway's
accepted+shed — every gateway submission in that run came over a socket.

With --require-cluster (the cluster bench's CI leg) the export must also
show the M-Cluster control plane: the schema's "cluster" section lists
the required cluster.* trace events and metric series plus the
controller/agent thread names, cluster.epoch must be >= 1 (a plan was
published) and cluster.heartbeats > 0 (membership was live).

With --require-script (the script bench's CI leg) the export must also
show the M-Script execution plane: the schema's "script" section lists
the required script.run execution span and the script.* metric series
from both halves (wire dispatch and shard execution), with at least one
script executed. The wire dispatch reconcile widens to
requests_dispatched + scripts_dispatched == accepted + shed, which
stays backward-safe for exports with no script traffic.

With --require-fleet (the fleet bench's CI leg) the export must also
show the M-Fleet simulator and the gateway tenancy plane: the schema's
"fleet" section lists the required fleet.run span, the fleet.* metric
series, and the producer thread-name prefix. Tenant rows are discovered
dynamically by parsing gateway.tenant.<name>.<counter> metric names —
at least min_tenants rows must exist, every row must carry the full
counter set, and each must reconcile exactly (ok + failed + timed_out +
shed == submitted; the export happens after the fleet run drained).

With --require-push (the push bench's CI leg) the export must also show
the M-Push subscription plane: the schema's "push" section lists the
required push.* trace events (subscribe/publish instants and the replay
span) and the metric series from both halves of the plane (the
gateway's PushFeed counters and the wire server's subscription/event
counters), with at least one subscription opened, events published, and
events delivered over the wire.

Exit code 0 on success, 1 with a message on any failure — an empty or
malformed export fails the build.
"""

import json
import pathlib
import sys


def fail(message: str) -> None:
    print(f"validate_mscope: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


# ---------------------------------------------------------------------------
# Mini JSON-Schema subset validator
# ---------------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def check_schema(value, schema, path="$"):
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        if isinstance(value, bool) and expected in ("integer", "number"):
            fail(f"{path}: expected {expected}, got boolean")
        if not isinstance(value, python_type):
            fail(f"{path}: expected {expected}, got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        fail(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            fail(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                check_schema(value[key], sub, f"{path}.{key}")
        if schema.get("additionalProperties") is False:
            extra = set(value) - set(properties)
            if extra:
                fail(f"{path}: unexpected keys {sorted(extra)}")
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            fail(f"{path}: {len(value)} items < minItems {schema['minItems']}")
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                check_schema(item, items, f"{path}[{i}]")


# ---------------------------------------------------------------------------
# Semantic checks
# ---------------------------------------------------------------------------


def check_trace_semantics(trace, wire=None, cluster=None, push=None,
                          script=None, fleet=None):
    events = trace["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    names = {e["name"] for e in events}

    gateway_spans = {n for n in names if n.startswith("gateway.")}
    core_spans = {
        n for n in names if n.startswith("core.") or n.startswith("op.")
    }
    if not gateway_spans:
        fail("no gateway.* spans in trace — serving layer not instrumented")
    if not core_spans:
        fail("no core.*/op.* spans in trace — core layer not instrumented")
    for required in ("gateway.serve", "gateway.attempt", "gateway.queue_wait"):
        if required not in names:
            fail(f"required span {required!r} missing from trace")

    # Cross-layer nesting: some core invocation event must sit inside a
    # gateway.attempt span's [ts, ts+dur] window on the same tid.
    attempts = [s for s in spans if s["name"] == "gateway.attempt"]
    if not attempts:
        fail("no gateway.attempt complete events")
    core_events = [
        e
        for e in spans + instants
        if e["name"].startswith(("core.", "op.")) and "ts" in e
    ]
    nested = 0
    by_tid = {}
    for attempt in attempts:
        by_tid.setdefault(attempt["tid"], []).append(attempt)
    for event in core_events:
        for attempt in by_tid.get(event["tid"], []):
            start = attempt["ts"]
            end = start + attempt.get("dur", 0)
            if start <= event["ts"] <= end:
                nested += 1
                break
    if nested == 0:
        fail("no core invocation event nests inside a gateway.attempt span")

    # OverheadMeter attribution: op instants carry virtual cost.
    op_instants = [e for e in instants if e["name"].startswith("op.")]
    if not op_instants:
        fail("no op.* instants — OverheadMeter attribution missing")
    if not any(
        "virt_cost_us" in e.get("args", {}) for e in op_instants
    ):
        fail("op.* instants lack virt_cost_us attribution args")

    # Worker threads are labeled.
    labels = [
        e["args"].get("name", "")
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    if not any(label.startswith("shard-") for label in labels):
        fail("no shard-N thread_name metadata")

    wire_note = ""
    if wire is not None:
        for required in wire["required_spans"]:
            if required not in names:
                fail(
                    f"required wire span {required!r} missing — "
                    "front-end not instrumented"
                )
        prefix = wire.get("thread_prefix", "wire-loop-")
        wire_tids = {
            e["tid"]
            for e in events
            if e["ph"] == "M"
            and e["name"] == "thread_name"
            and e["args"].get("name", "").startswith(prefix)
        }
        if not wire_tids:
            fail(f"no {prefix}N thread_name metadata — event loops unlabeled")
        # The read/decode side must actually run on those loop threads.
        loop_side = [
            e
            for e in spans
            if e["name"] in ("wire.read", "wire.decode")
            and e["tid"] in wire_tids
        ]
        if not loop_side:
            fail("no wire.read/wire.decode span on a wire-loop thread")
        wire_note = f", {len(wire_tids)} wire loop threads"

    script_note = ""
    if script is not None:
        for required in script["required_events"]:
            if required not in names:
                fail(
                    f"required script event {required!r} missing — "
                    "execution plane not instrumented"
                )
        script_runs = sum(1 for e in spans if e["name"] == "script.run")
        script_note = f", {script_runs} script runs"

    fleet_note = ""
    if fleet is not None:
        for required in fleet["required_events"]:
            if required not in names:
                fail(
                    f"required fleet event {required!r} missing — "
                    "simulator not instrumented"
                )
        prefix = fleet.get("thread_prefix", "fleet-gen-")
        producer_labels = [
            label for label in labels if label.startswith(prefix)
        ]
        if not producer_labels:
            fail(f"no {prefix}N thread_name metadata — producers unlabeled")
        fleet_note = f", {len(producer_labels)} fleet producer threads"

    push_note = ""
    if push is not None:
        for required in push["required_events"]:
            if required not in names:
                fail(
                    f"required push event {required!r} missing — "
                    "subscription plane not instrumented"
                )
        push_events = sum(1 for e in events if e["name"].startswith("push."))
        push_note = f", {push_events} push events"

    cluster_note = ""
    if cluster is not None:
        for required in cluster["required_events"]:
            if required not in names:
                fail(
                    f"required cluster event {required!r} missing — "
                    "control plane not instrumented"
                )
        for thread in cluster.get("thread_names", []):
            if thread not in labels:
                fail(
                    f"no {thread!r} thread_name metadata — "
                    "control-plane threads unlabeled"
                )
        cluster_events = sum(
            1 for e in events if e["name"].startswith("cluster.")
        )
        cluster_note = f", {cluster_events} cluster events"

    print(
        f"validate_mscope: trace ok — {len(events)} events, "
        f"{len(gateway_spans)} gateway span names, "
        f"{len(core_spans)} core span names, {nested} nested core events"
        f"{wire_note}{script_note}{fleet_note}{push_note}{cluster_note}"
    )


def check_metrics_semantics(metrics_doc, wire=None, cluster=None,
                            push=None, script=None, fleet=None):
    metrics = metrics_doc["metrics"]
    for name, value in metrics.items():
        if not isinstance(value, (int, float)) and value is not None:
            fail(f"metric {name!r} is not numeric or null: {value!r}")
    completed = (
        metrics["gateway.ok"]
        + metrics["gateway.failed"]
        + metrics["gateway.timed_out"]
    )
    accepted = metrics["gateway.accepted"]
    if completed != accepted:
        fail(
            f"metrics do not reconcile: ok+failed+timed_out={completed} "
            f"!= accepted={accepted} (gateway was quiescent at export)"
        )
    if metrics["gateway.op.dispatch"] <= 0:
        fail("gateway.op.dispatch is zero — meter plane not flowing")

    wire_note = ""
    if wire is not None:
        for name in wire["required_metrics"]:
            if name not in metrics:
                fail(f"required wire metric {name!r} missing")
        if metrics["wire.frames_in"] <= 0 or metrics["wire.frames_out"] <= 0:
            fail("wire.frames_in/out are zero — no traffic crossed the wire")
        dispatched = metrics["wire.requests_dispatched"] + metrics.get(
            "wire.scripts_dispatched", 0
        )
        gateway_seen = metrics["gateway.accepted"] + metrics["gateway.shed"]
        if dispatched != gateway_seen:
            fail(
                f"wire requests+scripts dispatched={dispatched} != "
                f"gateway accepted+shed={gateway_seen} — some gateway "
                "traffic bypassed the wire (or frames were lost)"
            )
        wire_note = f", {dispatched} wire dispatches reconciled"

    script_note = ""
    if script is not None:
        for name in script["required_metrics"]:
            if name not in metrics:
                fail(f"required script metric {name!r} missing")
        executed = metrics["gateway.script.executed"]
        if executed <= 0:
            fail("gateway.script.executed is zero — no script ever ran")
        if metrics["wire.scripts_dispatched"] < executed:
            fail(
                f"wire.scripts_dispatched={metrics['wire.scripts_dispatched']}"
                f" < gateway.script.executed={executed} — scripts ran that "
                "never crossed the wire"
            )
        if metrics["gateway.script.budget_kills"] <= 0:
            fail(
                "gateway.script.budget_kills is zero — the traced scenario "
                "must prove the sandbox fires"
            )
        script_note = f", {int(executed)} scripts executed"

    fleet_note = ""
    if fleet is not None:
        for name in fleet["required_metrics"]:
            if name not in metrics:
                fail(f"required fleet metric {name!r} missing")
        if metrics["fleet.devices"] <= 0:
            fail("fleet.devices is zero — no fleet was simulated")
        if metrics["fleet.submitted"] <= 0:
            fail("fleet.submitted is zero — the fleet never drove traffic")
        if metrics["fleet.completed"] != metrics["fleet.submitted"]:
            fail(
                f"fleet.completed={metrics['fleet.completed']} != "
                f"fleet.submitted={metrics['fleet.submitted']} — the fleet "
                "was not quiescent at export"
            )
        # Discover tenant rows from the metric namespace itself: every
        # gateway.tenant.<name>.<counter> series names one row.
        prefix = fleet.get("tenant_metric_prefix", "gateway.tenant.")
        counters = fleet.get("tenant_counters", [])
        tenants = {}
        for name in metrics:
            if not name.startswith(prefix):
                continue
            tenant, _, counter = name[len(prefix):].rpartition(".")
            if tenant:
                tenants.setdefault(tenant, {})[counter] = metrics[name]
        min_tenants = fleet.get("min_tenants", 2)
        if len(tenants) < min_tenants:
            fail(
                f"only {len(tenants)} tenant rows in metrics "
                f"({sorted(tenants)}) — need at least {min_tenants} "
                "(the default tenant plus every configured one)"
            )
        for tenant, row in sorted(tenants.items()):
            for counter in counters:
                if counter not in row:
                    fail(
                        f"tenant {tenant!r} lacks counter {counter!r} — "
                        "row export incomplete"
                    )
            served = row["ok"] + row["failed"] + row["timed_out"]
            if served + row["shed"] != row["submitted"]:
                fail(
                    f"tenant {tenant!r} does not reconcile: "
                    f"ok+failed+timed_out+shed={served + row['shed']} != "
                    f"submitted={row['submitted']}"
                )
            if row["quota_shed"] > row["shed"]:
                fail(
                    f"tenant {tenant!r}: quota_shed={row['quota_shed']} > "
                    f"shed={row['shed']} — quota sheds must be a subset"
                )
        fleet_note = (
            f", {int(metrics['fleet.devices'])} devices across "
            f"{len(tenants)} tenant rows reconciled"
        )

    push_note = ""
    if push is not None:
        for name in push["required_metrics"]:
            if name not in metrics:
                fail(f"required push metric {name!r} missing")
        if metrics["wire.push_subscriptions_opened"] < 1:
            fail("wire.push_subscriptions_opened is zero — nobody subscribed")
        if metrics["gateway.push.published"] <= 0:
            fail("gateway.push.published is zero — the feed never saw events")
        if metrics["wire.push_events_out"] <= 0:
            fail("wire.push_events_out is zero — no event crossed the wire")
        push_note = (
            f", {int(metrics['wire.push_events_out'])} push events delivered"
        )

    cluster_note = ""
    if cluster is not None:
        for name in cluster["required_metrics"]:
            if name not in metrics:
                fail(f"required cluster metric {name!r} missing")
        if metrics["cluster.epoch"] < 1:
            fail("cluster.epoch < 1 — no partition plan was ever published")
        if metrics["cluster.heartbeats"] <= 0:
            fail("cluster.heartbeats is zero — membership never went live")
        cluster_note = (
            f", epoch {int(metrics['cluster.epoch'])} with "
            f"{int(metrics['cluster.heartbeats'])} heartbeats"
        )

    print(
        f"validate_mscope: metrics ok — {len(metrics)} series, "
        f"{accepted} accepted reconciled{wire_note}{script_note}"
        f"{fleet_note}{push_note}{cluster_note}"
    )


def main(argv):
    args = list(argv[1:])
    require_wire = "--require-wire" in args
    if require_wire:
        args.remove("--require-wire")
    require_cluster = "--require-cluster" in args
    if require_cluster:
        args.remove("--require-cluster")
    require_push = "--require-push" in args
    if require_push:
        args.remove("--require-push")
    require_script = "--require-script" in args
    if require_script:
        args.remove("--require-script")
    require_fleet = "--require-fleet" in args
    if require_fleet:
        args.remove("--require-fleet")
    if len(args) < 2:
        fail(
            f"usage: {argv[0]} TRACE.json METRICS.json [SCHEMA.json] "
            "[--require-wire] [--require-cluster] [--require-push] "
            "[--require-script] [--require-fleet]"
        )
    trace_path, metrics_path = args[0], args[1]
    schema_path = (
        args[2]
        if len(args) > 2
        else str(pathlib.Path(__file__).with_name("mscope_schema.json"))
    )
    with open(schema_path) as f:
        schema = json.load(f)
    wire = schema.get("wire") if require_wire else None
    if require_wire and wire is None:
        fail(f"--require-wire set but {schema_path} has no \"wire\" section")
    cluster = schema.get("cluster") if require_cluster else None
    if require_cluster and cluster is None:
        fail(
            f"--require-cluster set but {schema_path} has no "
            '"cluster" section'
        )
    push = schema.get("push") if require_push else None
    if require_push and push is None:
        fail(f"--require-push set but {schema_path} has no \"push\" section")
    script = schema.get("script") if require_script else None
    if require_script and script is None:
        fail(
            f"--require-script set but {schema_path} has no "
            '"script" section'
        )
    fleet = schema.get("fleet") if require_fleet else None
    if require_fleet and fleet is None:
        fail(f"--require-fleet set but {schema_path} has no \"fleet\" section")

    for label, path, key, semantic in (
        ("trace", trace_path, "trace", check_trace_semantics),
        ("metrics", metrics_path, "metrics", check_metrics_semantics),
    ):
        try:
            with open(path) as f:
                document = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{label} file {path}: {e}")
        check_schema(document, schema[key], f"$({label})")
        semantic(document, wire, cluster, push, script, fleet)
    print("validate_mscope: PASS")


if __name__ == "__main__":
    main(sys.argv)
